// Request routers: the policy that picks which replica serves each
// arriving query. Routing is where the serving fleet trades locality
// against load: spreading queries evenly balances queues but dilutes
// every replica's cache, while concentrating similar queries heats one
// replica's cache at the risk of queue buildup. The hit-aware policy
// navigates exactly that frontier.

package serve

import (
	"fmt"
	"math/rand"
)

// Policy names a routing policy.
type Policy string

const (
	// PolicyRandom routes each query to a uniformly random replica.
	PolicyRandom Policy = "random"
	// PolicyRoundRobin cycles replicas in index order.
	PolicyRoundRobin Policy = "roundrobin"
	// PolicyLeastLoaded routes to the replica with the shortest queue
	// at arrival time (ties break toward the lower index).
	PolicyLeastLoaded Policy = "leastloaded"
	// PolicyHitAware scores each replica by the estimated overlap
	// between the query's embedding IDs and the replica's cache
	// contents (tracked router-side, not by oracle inspection), minus a
	// queue-depth penalty; ties break toward the shallower queue, then
	// the lower index.
	PolicyHitAware Policy = "hitaware"
)

// Policies lists every routing policy in escalation order.
var Policies = []Policy{PolicyRandom, PolicyRoundRobin, PolicyLeastLoaded, PolicyHitAware}

// PolicyNames lists the parseable policies for usage errors.
const PolicyNames = "random, roundrobin, leastloaded, hitaware"

// ParsePolicy resolves a routing policy name ("" selects hitaware).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", PolicyHitAware:
		return PolicyHitAware, nil
	case PolicyRandom:
		return PolicyRandom, nil
	case PolicyRoundRobin:
		return PolicyRoundRobin, nil
	case PolicyLeastLoaded:
		return PolicyLeastLoaded, nil
	}
	return "", fmt.Errorf("serve: unknown router policy %q (want %s)", s, PolicyNames)
}

// depthPenalty converts queue depth into overlap-score units, in
// multiples of the query's own occurrence count: each queued request
// costs a full query's worth of overlap. A fully warm replica can
// therefore never outbid an idle rival from behind a queue — overlap
// only breaks ties between equally shallow queues. Weaker penalties
// (tried first) let the warm replica absorb the whole stream and blow
// up the latency tail; this calibration keeps the p99 at the
// load-balancers' level while still concentrating traffic for cache
// warmth whenever the fleet has slack.
const depthPenalty = 1.0

// router is the routing state shared across a run: the PRNG for the
// random policy, the round-robin cursor, and the hit-aware policy's
// per-replica cache views.
type router struct {
	policy Policy
	rng    *rand.Rand
	rr     int
	views  []*cacheView
}

func newRouter(policy Policy, replicas, viewCap int, seed int64) *router {
	r := &router{policy: policy, rng: rand.New(rand.NewSource(seed))}
	if policy == PolicyHitAware {
		r.views = make([]*cacheView, replicas)
		for i := range r.views {
			r.views[i] = newCacheView(viewCap)
		}
	}
	return r
}

// pick selects the replica for a request arriving at time now. keys is
// the request's embedding IDs in the router's composite (table, id) key
// space, occurrence-ordered.
func (r *router) pick(keys []int64, workers []*worker, now float64) int {
	switch r.policy {
	case PolicyRandom:
		return r.rng.Intn(len(workers))
	case PolicyRoundRobin:
		w := r.rr
		r.rr = (r.rr + 1) % len(workers)
		return w
	case PolicyLeastLoaded:
		best := 0
		bestDepth := workers[0].depth(now)
		for i := 1; i < len(workers); i++ {
			if d := workers[i].depth(now); d < bestDepth {
				best, bestDepth = i, d
			}
		}
		return best
	case PolicyHitAware:
		// score(w) = overlap(w) - depthPenalty * |keys| * depth(w),
		// where overlap counts the request's ID occurrences the router
		// believes are resident in w's scratchpad.
		best := -1
		bestScore := 0.0
		bestDepth := 0
		for i, wk := range workers {
			d := wk.depth(now)
			score := float64(r.views[i].overlap(keys)) - depthPenalty*float64(len(keys))*float64(d)
			if best < 0 || score > bestScore || (score == bestScore && d < bestDepth) {
				best, bestScore, bestDepth = i, score, d
			}
		}
		r.views[best].insert(keys)
		return best
	}
	return 0
}

// cacheView is the router's approximate model of one replica's cache
// contents: a bounded FIFO set of the composite ID keys the router has
// sent there. It deliberately ignores the replica's true (LRU) eviction
// order — the router estimates from its own routing history, which is
// the information a real frontend actually has.
type cacheView struct {
	set  map[int64]struct{}
	ring []int64
	head int
	cap  int
}

func newCacheView(capacity int) *cacheView {
	if capacity < 1 {
		capacity = 1
	}
	return &cacheView{set: make(map[int64]struct{}, capacity), cap: capacity}
}

// overlap counts the keys (occurrence-weighted) present in the view.
func (v *cacheView) overlap(keys []int64) int {
	n := 0
	for _, k := range keys {
		if _, ok := v.set[k]; ok {
			n++
		}
	}
	return n
}

// insert records keys as resident, evicting the oldest entries FIFO
// once the view exceeds its capacity.
func (v *cacheView) insert(keys []int64) {
	for _, k := range keys {
		if _, ok := v.set[k]; ok {
			continue
		}
		v.set[k] = struct{}{}
		v.ring = append(v.ring, k)
		for len(v.set) > v.cap {
			old := v.ring[v.head]
			v.head++
			delete(v.set, old)
		}
	}
	// Compact the ring's consumed prefix once it dominates the slice.
	if v.head > len(v.ring)/2 && v.head > 1024 {
		v.ring = append(v.ring[:0], v.ring[v.head:]...)
		v.head = 0
	}
}
