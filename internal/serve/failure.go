// The resilient serving simulator: an event-driven twin of the fast
// path in serve.go that adds replica failures, client retries/hedging,
// deadlines, and admission control. Simulate switches here whenever any
// of those knobs is engaged (Options.Resilient); with all of them off
// the fast path runs instead and stays bit-identical to the
// pre-resilience simulator.
//
// Determinism. The virtual clock advances through a single event heap
// ordered by (time, kind, insertion sequence): kills and heals sort
// before retries and hedges at the same instant, and arrivals are
// merged in at heap-top time. Attempt outcomes are resolved eagerly at
// dispatch — a worker's outage schedule is static, so an attempt whose
// completion lands past the worker's next kill is doomed the moment it
// enqueues and fails when the kill event flushes the queue. No PRNG is
// consulted anywhere outside the router and the request stream, both of
// which draw in the same order as the fast path.
//
// Client knowledge. The frontend reacts only to what a real client
// could observe: a delivered response, a failure notification when a
// replica dies with the query in its queue, and its own timers (backoff
// and hedge delays, the deadline). A retry is scheduled only when no
// other attempt of the query is outstanding; a response that will
// arrive in the future never suppresses a hedge or retry firing now.

package serve

import (
	"math"

	"repro/internal/metrics"
)

// query is one client request's lifecycle across all its attempts.
type query struct {
	at   float64
	ids  [][]int64
	keys []int64
	// bestDone is the earliest response delivery time across successful
	// attempts (+Inf until one settles); winner the replica that
	// delivered it; winnerDeg whether that winning attempt ran on the
	// CPU fallback path (its latency reports in DegradedLatency).
	bestDone  float64
	winner    int
	winnerDeg bool
	// tried lists replicas this query has attempted (exclusion set for
	// retries and hedges); retries counts the retry budget spent.
	tried   []int
	retries int
	// resolved marks queries finalized before completion: shed by
	// admission or dropped off a full queue.
	resolved bool
}

// evKind orders same-instant events: infrastructure first (a kill at
// time t flushes the queue before anything else lands at t), then batch
// launches (a same-instant retry lands after the launch and waits for
// the next batch), then client timers.
type evKind uint8

const (
	evKill evKind = iota
	evHeal
	evBatch
	evRetry
	evHedge
)

// dispatchMode distinguishes the three ways a query reaches a replica.
type dispatchMode uint8

const (
	modeFirst dispatchMode = iota
	modeRetry
	modeHedge
)

type event struct {
	t    float64
	kind evKind
	seq  int64
	w    int
	q    *query
}

func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// resilientSim is the per-run state of the event-driven simulator.
type resilientSim struct {
	f         *Fleet
	rep       *Report
	lat       metrics.Series
	degLat    metrics.Series
	events    []event
	seq       int64
	queries   []*query
	totalIDs  int
	shedDepth int
	good      int64
	maxDone   float64
	// batchIDs is the reusable per-table concatenation buffer the
	// batched path plans through (nil when batching is off).
	batchIDs [][]int64
	// batchSeen is the reusable composite-key set that counts a batch's
	// distinct keys (shared keys are probed once).
	batchSeen map[int64]struct{}
}

func (s *resilientSim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(s.events[i], s.events[p]) {
			break
		}
		s.events[i], s.events[p] = s.events[p], s.events[i]
		i = p
	}
}

func (s *resilientSim) pop() event {
	top := s.events[0]
	last := len(s.events) - 1
	s.events[0] = s.events[last]
	s.events = s.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s.events) && eventLess(s.events[l], s.events[m]) {
			m = l
		}
		if r < len(s.events) && eventLess(s.events[r], s.events[m]) {
			m = r
		}
		if m == i {
			break
		}
		s.events[i], s.events[m] = s.events[m], s.events[i]
		i = m
	}
	return top
}

// simulateResilient plays the arrival vector with the failure model and
// client resilience engaged.
func (f *Fleet) simulateResilient(arrivals []float64) (*Report, error) {
	s := &resilientSim{
		f: f,
		rep: &Report{
			Router:   Policy(f.cfg.Router),
			Replicas: f.cfg.Replicas,
			Batch:    f.cfg.Batch.canonical(),
			Offered:  int64(len(arrivals)),
		},
		totalIDs: f.cfg.NumTables * f.cfg.Lookups,
	}
	if f.cfg.Batch.Enabled() {
		s.batchIDs = make([][]int64, f.cfg.NumTables)
		for t := range s.batchIDs {
			s.batchIDs[t] = make([]int64, 0, f.cfg.Lookups*f.cfg.Batch.Cap)
		}
		s.batchSeen = make(map[int64]struct{}, s.totalIDs*f.cfg.Batch.Cap)
	}
	if f.cfg.Admission.Policy != AdmitAll {
		s.shedDepth = int(math.Ceil(f.cfg.Admission.Threshold * float64(f.cfg.QueueCap)))
		if s.shedDepth < 1 {
			s.shedDepth = 1
		}
		if s.shedDepth > f.cfg.QueueCap {
			s.shedDepth = f.cfg.QueueCap
		}
	}
	for _, wk := range f.workers {
		for _, sp := range wk.downs {
			s.push(event{t: sp.from, kind: evKill, w: wk.id})
			if !math.IsInf(sp.to, 1) {
				s.push(event{t: sp.to, kind: evHeal, w: wk.id})
			}
		}
	}
	i := 0
	for i < len(arrivals) || len(s.events) > 0 {
		if len(s.events) > 0 && (i >= len(arrivals) || s.events[0].t <= arrivals[i]) {
			e := s.pop()
			var err error
			switch e.kind {
			case evKill:
				s.kill(e.w, e.t)
			case evHeal:
				err = s.heal(e.w)
			case evBatch:
				err = s.fireBatch(e.w, e.t)
			case evRetry:
				err = s.fireRetry(e.q, e.t)
			case evHedge:
				err = s.fireHedge(e.q, e.t)
			}
			if err != nil {
				return nil, err
			}
			continue
		}
		at := arrivals[i]
		i++
		f.nextRequest()
		q := &query{at: at, bestDone: math.Inf(1), winner: -1}
		q.keys = append([]int64(nil), f.reqKeys...)
		q.ids = make([][]int64, len(f.reqIDs))
		for t := range f.reqIDs {
			q.ids[t] = append([]int64(nil), f.reqIDs[t]...)
		}
		s.queries = append(s.queries, q)
		if err := s.dispatch(q, at, modeFirst); err != nil {
			return nil, err
		}
		// Arm the hedge timer once the primary attempt is in flight.
		if f.cfg.Hedge > 0 && f.cfg.Replicas > 1 && !q.resolved && len(q.tried) > 0 {
			ht := at + f.cfg.Hedge
			if f.cfg.Deadline == 0 || ht < at+f.cfg.Deadline {
				s.push(event{t: ht, kind: evHedge, q: q})
			}
		}
	}
	return s.finish(arrivals)
}

// linkHop prices the frontend-to-worker hop (IDs up, score back) and
// books the routing-link counters, mirroring the fast path.
func (s *resilientSim) linkHop(wk *worker) (linkUp, linkDown float64) {
	f := s.f
	if f.cfg.Topology != nil && wk.node != 0 {
		link := f.cfg.Topology.Link(0, wk.node)
		linkUp = link.TransferTime(idBytes(s.totalIDs))
		linkDown = link.TransferTime(respBytes)
		s.rep.CrossNode++
		if wk.host != f.cfg.Topology.Nodes[0].Host {
			s.rep.CrossHost++
		}
		s.rep.LinkTime += linkUp + linkDown
	}
	return
}

// settle resolves an enqueued attempt's fate eagerly: if its completion
// beats the worker's next scheduled kill it delivers (first response
// wins), otherwise the attempt is doomed and fails when the kill
// flushes the queue. degraded marks a CPU-fallback attempt, so a win
// reports its latency in the degraded percentile block.
func (s *resilientSim) settle(q *query, wk *worker, t, done, linkDown float64, degraded bool) {
	if done <= wk.nextKill(t) {
		resp := done + linkDown
		if resp < q.bestDone {
			q.bestDone = resp
			q.winner = wk.id
			q.winnerDeg = degraded
		}
	} else {
		wk.doomed = append(wk.doomed, q)
	}
}

// dispatch routes one attempt of q at time t. modeFirst runs the
// admission controller and finalizes drops; modeRetry treats a full
// queue or an empty fleet as another failed attempt; modeHedge gives up
// silently (the primary is still in flight).
func (s *resilientSim) dispatch(q *query, t float64, mode dispatchMode) error {
	f := s.f
	w := f.router.choose(q.keys, f.workers, t, q.tried)
	if w < 0 && mode == modeRetry && len(q.tried) > 0 {
		// Every untried replica is down; a desperate retry goes back to
		// any live one.
		w = f.router.choose(q.keys, f.workers, t, nil)
	}
	if w < 0 {
		if mode != modeHedge {
			s.attemptFailed(q, t)
		}
		return nil
	}
	wk := f.workers[w]
	d := wk.depth(t)
	adm := f.cfg.Admission
	if mode == modeFirst && adm.Policy != AdmitAll && d >= s.shedDepth {
		reject := true
		if adm.Policy == AdmitCheapest {
			// Cheapest-first: reject the cache-warm arrival (its rows
			// stay resident; losing it costs least), admit the
			// miss-heavy one.
			est := f.router.estOverlap(w, q.keys)
			reject = est*2 >= len(q.keys)
		}
		if reject {
			if adm.Degrade {
				s.degradedDispatch(q, wk, t)
				return nil
			}
			q.resolved = true
			s.rep.Shed++
			return nil
		}
	}
	if d >= f.cfg.QueueCap {
		if adm.Degrade {
			s.degradedDispatch(q, wk, t)
			return nil
		}
		switch mode {
		case modeFirst:
			wk.drops++
			s.rep.Drops++
			q.resolved = true
		case modeRetry:
			q.tried = append(q.tried, w)
			s.attemptFailed(q, t)
		case modeHedge:
			// The hedge found no room; the primary attempt stands.
		}
		return nil
	}
	if f.cfg.Batch.Enabled() {
		s.enqueueBatch(q, wk, t)
		return nil
	}
	linkUp, linkDown := s.linkHop(wk)
	fills, evicts, coord, err := wk.plan(q.ids)
	if err != nil {
		return err
	}
	f.maybePublish(wk, t)
	svc := f.ServiceTime(fills, s.totalIDs, coord)
	enq := t + linkUp
	start := enq
	if wk.busyUntil > start {
		start = wk.busyUntil
	}
	done := start + svc
	wk.busyUntil = done
	wk.comp = append(wk.comp, done)
	if dd := len(wk.comp) - wk.head; dd > wk.peakDepth {
		wk.peakDepth = dd
	}
	s.rep.Fills += int64(fills)
	s.rep.Evictions += int64(evicts)
	s.rep.CoordTime += coord
	if wk.rewarm {
		wk.rewarmFills += int64(fills)
		wk.rewarmTime += f.fillDetour(fills)
		if wk.residentRows() >= wk.rewarmTarget {
			wk.rewarm = false
		}
	}
	f.router.note(w, q.keys)
	q.tried = append(q.tried, w)
	s.settle(q, wk, t, done, linkDown, false)
	return nil
}

// enqueueBatch parks one attempt of q in wk's batch queue: the routing
// link is paid now (the IDs travel to the replica at dispatch), the
// scratchpad is planned at launch. The router's view learns the keys at
// dispatch, exactly as the unbatched path does.
func (s *resilientSim) enqueueBatch(q *query, wk *worker, t float64) {
	linkUp, linkDown := s.linkHop(wk)
	s.f.router.note(wk.id, q.keys)
	q.tried = append(q.tried, wk.id)
	wk.pending = append(wk.pending, pendingReq{q: q, enq: t + linkUp, linkDown: linkDown})
	if d := len(wk.comp) - wk.head + len(wk.pending); d > wk.peakDepth {
		wk.peakDepth = d
	}
	s.scheduleBatch(wk, t)
}

// batchReady returns the earliest time wk's head batch may launch,
// ignoring the busy horizon: the moment the cap-th member is aboard, or
// the first member's enqueue plus the hold delay for an undersized
// batch.
func (s *resilientSim) batchReady(wk *worker, now float64) float64 {
	capN := s.f.cfg.Batch.Cap
	if len(wk.pending) >= capN {
		ready := now
		for _, p := range wk.pending[:capN] {
			if p.enq > ready {
				ready = p.enq
			}
		}
		return ready
	}
	return wk.pending[0].enq + s.f.cfg.Batch.Delay
}

// scheduleBatch (re)arms wk's batch-launch event at the earliest launch
// time consistent with the batching rule and the busy horizon. Events
// are never retracted: a stale earlier event re-evaluates and re-arms,
// a later one is subsumed by the earlier arming.
func (s *resilientSim) scheduleBatch(wk *worker, now float64) {
	if wk.down || len(wk.pending) == 0 {
		return
	}
	at := s.batchReady(wk, now)
	if wk.busyUntil > at {
		at = wk.busyUntil
	}
	if at < now {
		at = now
	}
	if at < wk.batchPlanned {
		wk.batchPlanned = at
		s.push(event{t: at, kind: evBatch, w: wk.id})
	}
}

// fireBatch handles a batch-launch event on worker w: launch if the
// batch is ready and the worker free, otherwise re-arm for the earliest
// time it will be.
func (s *resilientSim) fireBatch(w int, t float64) error {
	wk := s.f.workers[w]
	if t >= wk.batchPlanned {
		wk.batchPlanned = math.Inf(1)
	}
	if wk.down || len(wk.pending) == 0 {
		return nil
	}
	at := s.batchReady(wk, t)
	if wk.busyUntil > at {
		at = wk.busyUntil
	}
	if at > t {
		if at < wk.batchPlanned {
			wk.batchPlanned = at
			s.push(event{t: at, kind: evBatch, w: w})
		}
		return nil
	}
	if err := s.launchBatch(wk, t); err != nil {
		return err
	}
	// Leftover members (beyond the cap, or enqueued mid-decision) re-arm
	// behind the new busy horizon.
	s.scheduleBatch(wk, t)
	return nil
}

// launchBatch services wk's head batch at time t: up to Cap members
// whose IDs have arrived are planned through the scratchpad as one
// deduplicated batch (one Plan per table over the concatenated IDs) and
// priced by BatchServiceTime; every member completes at the batch's
// end and settles against the kill schedule — a kill mid-batch dooms
// the whole batch to client-visible failures.
func (s *resilientSim) launchBatch(wk *worker, t float64) error {
	f := s.f
	start := t
	if wk.busyUntil > start {
		start = wk.busyUntil
	}
	n := 0
	for n < len(wk.pending) && n < f.cfg.Batch.Cap && wk.pending[n].enq <= start {
		n++
	}
	if n == 0 {
		return nil
	}
	members := wk.pending[:n]
	for t := range s.batchIDs {
		s.batchIDs[t] = s.batchIDs[t][:0]
	}
	clear(s.batchSeen)
	unique := 0
	for _, p := range members {
		for t := range p.q.ids {
			s.batchIDs[t] = append(s.batchIDs[t], p.q.ids[t]...)
		}
		for _, k := range p.q.keys {
			if _, ok := s.batchSeen[k]; !ok {
				s.batchSeen[k] = struct{}{}
				unique++
			}
		}
	}
	fills, evicts, coord, err := wk.plan(s.batchIDs)
	if err != nil {
		return err
	}
	f.maybePublish(wk, t)
	svc := f.BatchServiceTime(fills, unique, n*s.totalIDs, n, coord)
	done := start + svc
	wk.busyUntil = done
	for range members {
		wk.comp = append(wk.comp, done)
	}
	s.rep.Fills += int64(fills)
	s.rep.Evictions += int64(evicts)
	s.rep.CoordTime += coord
	if wk.rewarm {
		wk.rewarmFills += int64(fills)
		wk.rewarmTime += f.fillDetour(fills)
		if wk.residentRows() >= wk.rewarmTarget {
			wk.rewarm = false
		}
	}
	wk.batches++
	wk.batchedQueries += int64(n)
	if n > wk.maxBatch {
		wk.maxBatch = n
	}
	for _, p := range members {
		s.settle(p.q, wk, t, done, p.linkDown, false)
	}
	wk.pending = append(wk.pending[:0], wk.pending[n:]...)
	return nil
}

// degradedDispatch answers q on wk's CPU fallback path: the host CPU is
// a second server next to the GPU worker (own completion horizon, no
// queue cap — admission already gated entry), so degraded-mode service
// rides out a full GPU queue instead of dropping. The scratchpad is
// untouched: no plan, no fills, no hit/miss accounting, and the
// router's view learns nothing.
func (s *resilientSim) degradedDispatch(q *query, wk *worker, t float64) {
	linkUp, linkDown := s.linkHop(wk)
	svc := s.f.DegradedServiceTime(s.totalIDs)
	enq := t + linkUp
	start := enq
	if wk.cpuBusyUntil > start {
		start = wk.cpuBusyUntil
	}
	done := start + svc
	wk.cpuBusyUntil = done
	wk.degraded++
	s.rep.Degraded++
	q.tried = append(q.tried, wk.id)
	s.settle(q, wk, t, done, linkDown, true)
}

// attemptFailed reacts to a lost attempt at time t: when the query has
// no response (delivered or pending from another outstanding attempt)
// and retry budget remains inside the deadline, the next retry is
// scheduled with exponential backoff. Queries that exhaust the budget
// finalize as TimedOut.
func (s *resilientSim) attemptFailed(q *query, t float64) {
	if q.resolved || !math.IsInf(q.bestDone, 1) {
		return
	}
	r := s.f.cfg.Retry
	if q.retries >= r.Max {
		return
	}
	q.retries++
	delay := r.Backoff * float64(int64(1)<<(q.retries-1))
	rt := t + delay
	if d := s.f.cfg.Deadline; d > 0 && rt >= q.at+d {
		return
	}
	s.push(event{t: rt, kind: evRetry, q: q})
}

// fireRetry redispatches q unless a response already arrived.
func (s *resilientSim) fireRetry(q *query, t float64) error {
	if q.resolved || q.bestDone <= t {
		return nil
	}
	s.rep.Retried++
	return s.dispatch(q, t, modeRetry)
}

// fireHedge duplicates q to the next-best untried replica unless a
// response already arrived. First response wins; the loser's work stays
// billed on whichever queue it occupies.
func (s *resilientSim) fireHedge(q *query, t float64) error {
	if q.resolved || q.bestDone <= t {
		return nil
	}
	n := len(q.tried)
	err := s.dispatch(q, t, modeHedge)
	if len(q.tried) > n {
		s.rep.Hedged++
	}
	return err
}

// kill takes worker w down at time t: the queue (GPU and CPU side) is
// flushed, every in-flight attempt fails back to the client, the
// scratchpad generation's statistics are banked and its state
// discarded, and the router's view of the replica is invalidated.
func (s *resilientSim) kill(w int, t float64) {
	f := s.f
	wk := f.workers[w]
	wk.down = true
	wk.depth(t) // retire completions delivered before the strike
	wk.comp = wk.comp[:0]
	wk.head = 0
	wk.busyUntil = t
	wk.cpuBusyUntil = t
	wk.rewarmTarget = wk.residentRows()
	wk.rewarm = false
	for _, mgr := range wk.mgrs {
		st := mgr.Stats()
		wk.accHits += st.Hits
		wk.accMisses += st.Misses
		cs := mgr.CoordStats()
		wk.accRounds += cs.Messages
		wk.accWall += cs.WallSeconds + cs.WallHiddenSeconds
	}
	wk.mgrs = nil
	f.router.invalidate(w)
	doomed := wk.doomed
	wk.doomed = nil
	for _, q := range doomed {
		s.attemptFailed(q, t)
	}
	// A kill mid-batch flushes the whole batch: members still waiting
	// for a launch fail back to the client exactly like the doomed
	// in-flight attempts above (retries and hedges re-enter the batcher
	// on another replica).
	pend := wk.pending
	wk.pending = wk.pending[:0]
	wk.batchPlanned = math.Inf(1)
	for _, p := range pend {
		s.attemptFailed(p.q, t)
	}
}

// heal brings worker w back with a cold scratchpad: the rebuilt cache
// re-warms through ordinary misses, tracked (and priced) as
// RewarmFills/RewarmTime until residency is back to its pre-kill level.
func (s *resilientSim) heal(w int) error {
	wk := s.f.workers[w]
	wk.down = false
	if err := s.f.buildScratchpads(wk); err != nil {
		return err
	}
	wk.rewarm = wk.rewarmTarget > 0
	return nil
}

// finish classifies every query (conservation-exact), assembles the
// per-worker reports, and computes the availability and goodput
// figures.
func (s *resilientSim) finish(arrivals []float64) (*Report, error) {
	f, rep := s.f, s.rep
	deadline := f.cfg.Deadline
	for _, q := range s.queries {
		if q.resolved {
			continue // already counted as Shed or Drops
		}
		if math.IsInf(q.bestDone, 1) {
			rep.TimedOut++
			continue
		}
		rep.Served++
		f.workers[q.winner].served++
		l := q.bestDone - q.at
		if q.winnerDeg {
			s.degLat.Add(l)
		} else {
			s.lat.Add(l)
		}
		if deadline == 0 || l <= deadline {
			s.good++
		}
		if q.bestDone > s.maxDone {
			s.maxDone = q.bestDone
		}
	}
	rep.Duration = s.maxDone
	if rep.Duration > 0 {
		rep.Throughput = float64(rep.Served) / rep.Duration
		rep.Goodput = float64(s.good) / rep.Duration
	}
	if n := len(arrivals); n > 0 && arrivals[n-1] > 0 {
		rep.OfferedRate = float64(rep.Offered) / arrivals[n-1]
	}
	rep.Latency = s.lat.Summarize()
	rep.DegradedLatency = s.degLat.Summarize()
	var downSum float64
	for _, wk := range f.workers {
		h, m := wk.accHits, wk.accMisses
		rep.CoordRounds += wk.accRounds
		rep.CoordWallTime += wk.accWall
		for _, mgr := range wk.mgrs {
			st := mgr.Stats()
			h += st.Hits
			m += st.Misses
			cs := mgr.CoordStats()
			rep.CoordRounds += cs.Messages
			rep.CoordWallTime += cs.WallSeconds + cs.WallHiddenSeconds
		}
		wk.hits, wk.misses = h, m
		rep.Hits += h
		rep.Misses += m
		rep.RewarmFills += wk.rewarmFills
		rep.RewarmTime += wk.rewarmTime
		rep.Batches += wk.batches
		rep.BatchedQueries += wk.batchedQueries
		if wk.maxBatch > rep.MaxBatch {
			rep.MaxBatch = wk.maxBatch
		}
		var down float64
		for _, sp := range wk.downs {
			if sp.from >= rep.Duration {
				break
			}
			to := sp.to
			if to > rep.Duration {
				to = rep.Duration
			}
			down += to - sp.from
		}
		downSum += down
		rep.Workers = append(rep.Workers, WorkerReport{
			Node: wk.node, Host: wk.host,
			Served: wk.served, Drops: wk.drops,
			Hits: wk.hits, Misses: wk.misses,
			PeakDepth: wk.peakDepth,
			Downtime:  down,
			Degraded:  wk.degraded,
			Batches:   wk.batches,
		})
	}
	rep.Availability = 1
	if rep.Duration > 0 && f.cfg.Replicas > 0 {
		rep.Availability = 1 - downSum/(float64(f.cfg.Replicas)*rep.Duration)
	}
	if err := rep.checkConservation(); err != nil {
		return nil, err
	}
	return rep, nil
}
