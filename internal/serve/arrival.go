// Arrival processes for the serving simulation: open-loop query streams
// whose instantaneous rate follows one of three shapes layered over a
// Poisson base process. Open-loop means arrivals do not slow down when
// the fleet falls behind — exactly the regime where queueing (and the
// router's load awareness) matters.

package serve

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ArrivalShape names a rate profile.
type ArrivalShape string

const (
	// ShapePoisson is a homogeneous Poisson process at the base rate.
	ShapePoisson ArrivalShape = "poisson"
	// ShapeDiurnal modulates the base rate sinusoidally over the run
	// (one full day-cycle: trough at the start, peak mid-run), modeling
	// the daily traffic swing of a user-facing service.
	ShapeDiurnal ArrivalShape = "diurnal"
	// ShapeFlash multiplies the base rate by a burst factor for a short
	// window mid-run (a flash crowd / retry storm), modeling the
	// overload transient that exposes queue drops.
	ShapeFlash ArrivalShape = "flash"
)

// ArrivalGrammar documents the -arrival flag syntax for usage errors.
const ArrivalGrammar = "poisson:<qps>, diurnal:<qps>[:<amp>], flash:<qps>[:<mult>[:<at>:<dur>]]"

// ArrivalSpec describes one arrival process. The zero value is inactive
// (no arrivals); ParseArrival builds active specs from the -arrival flag
// grammar.
type ArrivalSpec struct {
	// Shape selects the rate profile.
	Shape ArrivalShape
	// Rate is the base arrival rate in queries/second.
	Rate float64
	// Amp is the diurnal modulation amplitude in (0, 1]: the rate swings
	// between Rate*(1-Amp) and Rate*(1+Amp). 0 selects the default 0.5.
	Amp float64
	// Mult is the flash-crowd rate multiplier (> 1). 0 selects the
	// default 8.
	Mult float64
	// At is the flash-crowd start as a fraction of the nominal run
	// duration (0 selects the default 0.5).
	At float64
	// Dur is the flash-crowd length as a fraction of the nominal run
	// duration (0 selects the default 0.1).
	Dur float64
}

// Active reports whether the spec describes any arrivals.
func (a ArrivalSpec) Active() bool { return a.Rate > 0 }

// withDefaults fills the shape parameters left at zero.
func (a ArrivalSpec) withDefaults() ArrivalSpec {
	if a.Shape == "" {
		a.Shape = ShapePoisson
	}
	if a.Amp == 0 {
		a.Amp = 0.5
	}
	if a.Mult == 0 {
		a.Mult = 8
	}
	if a.At == 0 {
		a.At = 0.5
	}
	if a.Dur == 0 {
		a.Dur = 0.1
	}
	return a
}

// Validate reports a descriptive error for an unusable spec.
func (a ArrivalSpec) Validate() error {
	// Guard every numeric field against NaN/Inf first: ParseFloat accepts
	// both spellings, and the comparisons below silently pass NaN.
	for _, v := range []float64{a.Rate, a.Amp, a.Mult, a.At, a.Dur} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("serve: arrival parameter %g is not finite", v)
		}
	}
	if a.Rate <= 0 {
		return fmt.Errorf("serve: arrival rate %g <= 0", a.Rate)
	}
	switch a.Shape {
	case "", ShapePoisson:
	case ShapeDiurnal:
		if a.Amp < 0 || a.Amp > 1 {
			return fmt.Errorf("serve: diurnal amplitude %g out of (0,1]", a.Amp)
		}
	case ShapeFlash:
		if a.Mult != 0 && a.Mult <= 1 {
			return fmt.Errorf("serve: flash multiplier %g <= 1", a.Mult)
		}
		if a.At < 0 || a.At >= 1 {
			return fmt.Errorf("serve: flash start fraction %g out of [0,1)", a.At)
		}
		if a.Dur < 0 || a.Dur > 1 {
			return fmt.Errorf("serve: flash duration fraction %g out of (0,1]", a.Dur)
		}
		if d := a.withDefaults(); d.At+d.Dur > 1 {
			return fmt.Errorf("serve: flash window %g+%g extends past the run horizon (at + dur must stay <= 1)", d.At, d.Dur)
		}
	default:
		return fmt.Errorf("serve: unknown arrival shape %q (want %s)", a.Shape, ArrivalGrammar)
	}
	return nil
}

// String renders the spec in the -arrival grammar.
func (a ArrivalSpec) String() string {
	if !a.Active() {
		return ""
	}
	d := a.withDefaults()
	switch d.Shape {
	case ShapeDiurnal:
		return fmt.Sprintf("diurnal:%g:%g", d.Rate, d.Amp)
	case ShapeFlash:
		return fmt.Sprintf("flash:%g:%g:%g:%g", d.Rate, d.Mult, d.At, d.Dur)
	}
	return fmt.Sprintf("poisson:%g", d.Rate)
}

// ParseArrival parses the -arrival flag grammar (see ArrivalGrammar):
// "poisson:2000", "diurnal:2000:0.7", "flash:2000:8" or
// "flash:2000:8:0.5:0.1". The empty string parses to the inactive zero
// spec (callers substitute their default).
func ParseArrival(s string) (ArrivalSpec, error) {
	if s == "" {
		return ArrivalSpec{}, nil
	}
	parts := strings.Split(s, ":")
	spec := ArrivalSpec{Shape: ArrivalShape(parts[0])}
	num := func(i int, what string) (float64, error) {
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return 0, fmt.Errorf("serve: arrival %q: bad %s %q", s, what, parts[i])
		}
		return v, nil
	}
	var err error
	switch spec.Shape {
	case ShapePoisson:
		if len(parts) != 2 {
			return ArrivalSpec{}, fmt.Errorf("serve: arrival %q: want poisson:<qps>", s)
		}
		if spec.Rate, err = num(1, "rate"); err != nil {
			return ArrivalSpec{}, err
		}
	case ShapeDiurnal:
		if len(parts) < 2 || len(parts) > 3 {
			return ArrivalSpec{}, fmt.Errorf("serve: arrival %q: want diurnal:<qps>[:<amp>]", s)
		}
		if spec.Rate, err = num(1, "rate"); err != nil {
			return ArrivalSpec{}, err
		}
		if len(parts) == 3 {
			if spec.Amp, err = num(2, "amplitude"); err != nil {
				return ArrivalSpec{}, err
			}
		}
	case ShapeFlash:
		if len(parts) < 2 || len(parts) == 4 || len(parts) > 5 {
			return ArrivalSpec{}, fmt.Errorf("serve: arrival %q: want flash:<qps>[:<mult>[:<at>:<dur>]]", s)
		}
		if spec.Rate, err = num(1, "rate"); err != nil {
			return ArrivalSpec{}, err
		}
		if len(parts) >= 3 {
			if spec.Mult, err = num(2, "multiplier"); err != nil {
				return ArrivalSpec{}, err
			}
		}
		if len(parts) == 5 {
			if spec.At, err = num(3, "start fraction"); err != nil {
				return ArrivalSpec{}, err
			}
			if spec.Dur, err = num(4, "duration fraction"); err != nil {
				return ArrivalSpec{}, err
			}
		}
	default:
		return ArrivalSpec{}, fmt.Errorf("serve: arrival %q: unknown shape %q (want %s)", s, parts[0], ArrivalGrammar)
	}
	if err := spec.Validate(); err != nil {
		return ArrivalSpec{}, err
	}
	return spec, nil
}

// rateAt is the instantaneous rate lambda(t) given the nominal run
// duration d (the duration n queries take at the base rate).
func (a ArrivalSpec) rateAt(t, d float64) float64 {
	switch a.Shape {
	case ShapeDiurnal:
		// One full cycle over the nominal duration, trough at t=0 so
		// the run warms up before peak load hits.
		return a.Rate * (1 + a.Amp*math.Sin(2*math.Pi*t/d-math.Pi/2))
	case ShapeFlash:
		if t >= a.At*d && t < (a.At+a.Dur)*d {
			return a.Rate * a.Mult
		}
		return a.Rate
	}
	return a.Rate
}

// peakRate is the envelope max of lambda(t), the thinning proposal rate.
func (a ArrivalSpec) peakRate() float64 {
	switch a.Shape {
	case ShapeDiurnal:
		return a.Rate * (1 + a.Amp)
	case ShapeFlash:
		return a.Rate * a.Mult
	}
	return a.Rate
}

// Times generates n arrival timestamps (seconds, ascending from 0) by
// thinning a homogeneous Poisson proposal process at the envelope peak
// rate: candidates arrive at Exp(peak) spacing and survive with
// probability lambda(t)/peak. Deterministic in the seed.
func (a ArrivalSpec) Times(n int, seed int64) []float64 {
	a = a.withDefaults()
	if n <= 0 || !a.Active() {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	d := float64(n) / a.Rate
	peak := a.peakRate()
	times := make([]float64, 0, n)
	t := 0.0
	for len(times) < n {
		t += rng.ExpFloat64() / peak
		if rng.Float64()*peak < a.rateAt(t, d) {
			times = append(times, t)
		}
	}
	return times
}
