package serve

import (
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/par"
	"repro/internal/trace"
)

// runWithPool runs cfg with its shard fan-out bounded to the given
// worker count and returns the report.
func runWithPool(t *testing.T, cfg Config, workers int) *Report {
	t.Helper()
	cfg.Pool = par.New(workers)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return rep
}

// TestServeReportPoolDeterminism: the serving simulation's report must
// be bit-identical whether the sharded scratchpads plan on 1 or 4 pool
// workers — the fan-out is an execution detail, never a source of
// nondeterminism. Both simulator paths are pinned: the closed-form
// fast path (no faults, no batching) and the event-driven path
// (resilience knobs and batching engaged). reflect.DeepEqual compares
// every field, per-worker counters and latency digests included; the
// test also runs under `make race`, where the same comparison doubles
// as a fan-out race probe.
func TestServeReportPoolDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"closed-form", func() Config {
			cfg := testConfig(PolicyHitAware, trace.High)
			cfg.Shards = 2
			return cfg
		}},
		{"closed-form-telemetry", func() Config {
			cfg := testConfig(PolicyTelemetry, trace.High)
			cfg.Shards = 2
			return cfg
		}},
		{"event-driven", func() Config {
			cfg := testConfig(PolicyTelemetry, trace.Medium)
			cfg.Shards = 2
			cfg.Batch = BatchSpec{Cap: 8}
			cfg.Deadline = 20e-3
			cfg.Retry = RetrySpec{Max: 2}
			cfg.Faults = hw.FaultPlan{Events: []hw.FaultEvent{
				{Kind: hw.FaultReplicaDown, Replica: 1, At: 0.05, Until: 0.2},
			}}
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := runWithPool(t, tc.cfg(), 1)
			par4 := runWithPool(t, tc.cfg(), 4)
			if !reflect.DeepEqual(seq, par4) {
				t.Errorf("report diverges across pool widths:\n 1 worker: %+v\n 4 workers: %+v", seq, par4)
			}
		})
	}
}
