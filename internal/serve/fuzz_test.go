package serve

import "testing"

// FuzzParseArrival drives the -arrival grammar with arbitrary input.
// Properties (see FuzzParseFaultPlan for the rationale — benchmark
// baselines match on the canonical form):
//
//  1. No input panics the parser.
//  2. Any accepted spec validates, and its String() form reparses to
//     the same canonical string (defaults materialize exactly once:
//     "flash:2000" and its expansion "flash:2000:8:0.5:0.1" are the
//     same spec, and the expansion is the fixpoint).
func FuzzParseArrival(f *testing.F) {
	for _, seed := range []string{
		"",
		"poisson:2000",
		"poisson:2e3",
		"diurnal:3000",
		"diurnal:3000:0.7",
		"flash:2000",
		"flash:2000:8",
		"flash:2000:8:0.5:0.1",
		"flash:20000:10:0.3:0.2",
		"poisson:-5",
		"poisson:0",
		"diurnal:1000:1.5",
		"flash:1000:0.5",
		"flash:1000:8:0.9:0.5",
		"flash:1000:8:0.5",
		"poisson:1000:extra",
		"burst:1000",
		"poisson:",
		":",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseArrival(s)
		if err != nil {
			return
		}
		if !spec.Active() {
			// Only the empty string parses to the inactive zero spec.
			if s != "" {
				t.Fatalf("non-empty input %q parsed to an inactive spec", s)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", s, err)
		}
		canon := spec.String()
		again, err := ParseArrival(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", canon, s, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", s, canon, got)
		}
	})
}

// FuzzParseBatch drives the -serve-batch grammar: no panic, and any
// accepted spec's canonical form ("" for no-op caps, "<cap>" or
// "<cap>:<delay-ms>" otherwise) is a parse/print fixpoint. A cap of 1
// must canonicalize to the zero spec — that equivalence is what the
// byte-identity discipline (-serve-batch 1 == flag absent) hangs on.
func FuzzParseBatch(f *testing.F) {
	for _, seed := range []string{
		"", "1", "8", "8:0.25", "1:0", "16:1e-3", "0", "2:-1", "8:",
		":", "8:0.25:9", "notanumber",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseBatch(s)
		if err != nil {
			return
		}
		if !spec.Enabled() && spec != (BatchSpec{}) {
			t.Fatalf("accepted no-op spec %q is not the zero spec: %+v", s, spec)
		}
		canon := spec.String()
		again, err := ParseBatch(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", canon, s, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", s, canon, got)
		}
	})
}
