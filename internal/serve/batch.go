// Replica-side request batching: each worker dequeues up to BatchCap
// queued queries (or waits BatchDelay virtual seconds past the first,
// whichever comes first) and services them as one deduplicated batch.
// The batch's composite IDs are planned through the worker's sharded
// scratchpad in a single Plan per table, so a key shared by several
// members is probed (and filled) once; the IDs cross PCIe in one
// transfer, the resident rows are gathered and pooled in one kernel
// pair, and the dense forward runs once at the batch size with the
// engine roofline's per-query marginal cost. Hits and misses amortize
// exactly the way training's mini-batches amortize them — which is the
// whole point: PR 7-9 paid kernel launch and PCIe latency per query,
// the overhead real inference servers remove first.
//
// BatchCap <= 1 disables batching entirely: Simulate keeps the
// per-query paths and their output stays byte-identical to the
// pre-batching simulator (the -serve-batch 1 acceptance gate).

package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BatchGrammar documents the -serve-batch flag syntax for usage errors.
const BatchGrammar = "<cap>[:<delay-ms>]"

// BatchSpec configures replica-side request batching. The zero value
// (and any Cap <= 1) disables it: every query is serviced alone on the
// exact pre-batching path.
type BatchSpec struct {
	// Cap is the maximum queries serviced per batch (<= 1 disables
	// batching).
	Cap int
	// Delay is the longest a worker holds an undersized batch open, in
	// virtual-clock seconds past the first member's enqueue. Zero means
	// greedy batching: an idle worker launches immediately with
	// whatever is queued, so batches only grow while the worker is
	// busy (the adaptive batching real servers default to).
	Delay float64
}

// Enabled reports whether batching changes anything.
func (b BatchSpec) Enabled() bool { return b.Cap > 1 }

// canonical collapses every disabled spelling (zero, Cap 1, a delay
// with no real cap) onto the zero spec, so report echoes and baseline
// shape keys compare equal whenever behaviour is equal.
func (b BatchSpec) canonical() BatchSpec {
	if !b.Enabled() {
		return BatchSpec{}
	}
	return b
}

// Validate reports a descriptive error for an unusable spec.
func (b BatchSpec) Validate() error {
	if b.Cap < 0 {
		return fmt.Errorf("serve: batch cap %d < 0", b.Cap)
	}
	if !(b.Delay >= 0) || math.IsInf(b.Delay, 0) {
		return fmt.Errorf("serve: batch delay %g (want finite, >= 0)", b.Delay)
	}
	return nil
}

// String renders the spec in the -serve-batch grammar (delay in ms),
// "" for a disabled spec — the canonical shape key benchmark baselines
// record and match on.
func (b BatchSpec) String() string {
	if !b.Enabled() {
		return ""
	}
	if b.Delay > 0 {
		return fmt.Sprintf("%d:%g", b.Cap, b.Delay*1e3)
	}
	return strconv.Itoa(b.Cap)
}

// ParseBatch parses the -serve-batch flag grammar: "8" (cap 8, greedy)
// or "8:0.25" (hold undersized batches up to 0.25 ms). "" and "1" parse
// to the disabled zero spec.
func ParseBatch(s string) (BatchSpec, error) {
	if s == "" {
		return BatchSpec{}, nil
	}
	capPart, delay, hasDelay := strings.Cut(s, ":")
	var spec BatchSpec
	var err error
	if spec.Cap, err = strconv.Atoi(capPart); err != nil || spec.Cap < 1 {
		return BatchSpec{}, fmt.Errorf("serve: batch %q: bad cap %q (want %s)", s, capPart, BatchGrammar)
	}
	if hasDelay {
		ms, err := strconv.ParseFloat(delay, 64)
		if err != nil || !(ms >= 0) || math.IsInf(ms, 0) {
			return BatchSpec{}, fmt.Errorf("serve: batch %q: bad delay %q (want %s)", s, delay, BatchGrammar)
		}
		spec.Delay = ms / 1e3
	}
	if spec.Cap == 1 {
		// An explicit cap of 1 is "no batching"; canonicalize to the
		// zero spec so it shape-matches the flag being absent.
		return BatchSpec{}, nil
	}
	return spec, nil
}

// BatchServiceTime prices one deduplicated batch of `batch` queries on
// a worker. Relative to `batch` runs of ServiceTime, the batch pays the
// PCIe latency and each kernel's launch overhead once, probes only the
// uniqueIDs distinct composite keys (shared keys once, not per member),
// takes one aggregated fill detour, and runs one dense forward at the
// batch size — the roofline amortizes the weight-read bytes across
// members, leaving the per-query marginal FLOPs/activation cost.
// totalIDs is the occurrence count summed over members (gather and pool
// still touch every occurrence); coord is the batch's cross-shard Plan
// coordination latency.
func (f *Fleet) BatchServiceTime(fills, uniqueIDs, totalIDs, batch int, coord float64) float64 {
	sys := f.cfg.System
	dim := f.cfg.EmbeddingDim
	// The whole batch's sparse IDs cross PCIe in one transfer; the GPU
	// probes key+value once per distinct key.
	t := sys.PCIe.TransferTime(idBytes(totalIDs)) +
		sys.GPU.RandomTime(float64(uniqueIDs)*16)
	if fills > 0 {
		t += f.fillDetour(fills)
	}
	t += sys.GPU.GatherTime(totalIDs, dim) +
		sys.GPU.ReduceTime(totalIDs, batch*f.cfg.NumTables, dim)
	return t + f.denseBatchTime(batch) + coord
}

// denseBatchTime prices the dense MLP forward at batch size n: the
// engine-installed roofline when available (Config.DenseBatch), a
// linear extrapolation of the single-query DenseTime otherwise.
func (f *Fleet) denseBatchTime(n int) float64 {
	if n <= 1 {
		return f.cfg.DenseTime
	}
	if f.cfg.DenseBatch != nil {
		return f.cfg.DenseBatch(n)
	}
	return float64(n) * f.cfg.DenseTime
}
