// Package serve simulates online inference serving over the scratchpad:
// R replica workers, each holding the same per-table embedding cache
// machinery the training engines use (internal/shard over
// internal/core), fed single-sample queries by an open-loop arrival
// process through a pluggable router.
//
// Training and serving stress the scratchpad in opposite ways. Training
// plans with look-ahead — the dataset's future batches are known, so
// the cache prefetches exactly what it will need. A serving frontend
// has no future: queries arrive stochastically, the cache is reactive
// LRU, and the hit rate is made (or lost) by which replica each query
// lands on. That routing decision is this package's subject.
//
// Architecture orientation (DESIGN.md §11 is the long form):
//
//   - [ArrivalSpec] defines the open-loop query stream: a Poisson base
//     rate with optional diurnal or flash-crowd modulation
//     (ParseArrival speaks the -arrival flag grammar). Times renders a
//     deterministic arrival timestamp vector.
//   - [Policy] selects the router: random, roundrobin, leastloaded, or
//     hitaware (score replicas by estimated cache overlap from the
//     router's own bounded view of what it has sent where, minus a
//     queue-depth penalty).
//   - [Config] -> [NewFleet] -> [Fleet]: R workers, each with one
//     shard.Manager per table (Shards/Coord/Elastic configs carry over
//     from training), a bounded FIFO queue, and a home topology node.
//     Workers stripe across the topology's nodes; each worker's shards
//     stripe across its own host's nodes, so sharded replicas pay NUMA
//     coordination and cross-host routing pays network links.
//   - [Fleet.Simulate] plays an arrival vector through the router and
//     the per-worker queues: each admitted query Plans against the
//     worker's scratchpads (hits, misses, fills), is priced by the hw
//     Table I arithmetic (ServiceTime), and retires; queries arriving
//     to a full queue drop. [Report] digests throughput, aggregate and
//     per-worker hit rates, latency percentiles, and drops.
//
// Everything is deterministic in Config.Seed: same config, same report.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Options is the CLI-facing serving knob set (the -serve flag family),
// threaded through engine.EnvConfig and bench.Config. The zero value
// means "serving off" — Active() is false and nothing downstream runs.
type Options struct {
	// Replicas is the worker count R (>= 1 activates serving).
	Replicas int
	// Router selects the routing policy ("" = hitaware).
	Router Policy
	// Arrival is the open-loop arrival process (zero = poisson at
	// DefaultArrivalRate).
	Arrival ArrivalSpec
	// Requests is the number of queries to play (0 = DefaultRequests).
	Requests int
	// QueueCap bounds each worker's queue, in-service request included
	// (0 = DefaultQueueCap); arrivals beyond it drop.
	QueueCap int
	// CacheFrac sizes each worker's per-table scratchpad as a fraction
	// of the table (0 = the paper's 2%).
	CacheFrac float64
	// Faults schedules replica failures (-serve-fail): replica<R>@<T>[-<T2>]
	// events in virtual-clock seconds plus host<H>@<S> kills that take
	// down every replica homed on the host. A dead replica's queue is
	// flushed, its scratchpad state is lost, and recovery is priced as
	// cold-cache re-warm. The zero plan never perturbs a run.
	Faults hw.FaultPlan
	// Deadline is the per-query client deadline in seconds (0 = none).
	// Responses arriving after it do not count toward goodput, and no
	// retry is issued past it; queries that never complete are TimedOut.
	Deadline float64
	// Retry bounds client-side retries (with exponential backoff to a
	// different replica) after a failed attempt. Zero = no retries.
	Retry RetrySpec
	// Hedge, when positive, duplicates a still-unanswered query to the
	// next-best replica after this many seconds: first response wins,
	// the loser's work is still billed. Zero = no hedging.
	Hedge float64
	// Admission sheds or degrades load before the queues overflow.
	Admission AdmissionSpec
	// Batch enables replica-side request batching (-serve-batch): each
	// worker services up to Batch.Cap queued queries as one
	// deduplicated batch (batch.go). The zero spec (or Cap <= 1) keeps
	// the per-query paths byte-identical to the pre-batching simulator.
	Batch BatchSpec
}

// Serving defaults.
const (
	DefaultArrivalRate = 2000.0
	DefaultRequests    = 4096
	DefaultQueueCap    = 32
)

// Active reports whether serving mode is on.
func (o Options) Active() bool { return o.Replicas > 0 }

// Resilient reports whether any failure-model or client-resilience knob
// is engaged. When false, Simulate runs the exact pre-resilience fast
// path, so zero-fault runs stay diff-identical to it.
func (o Options) Resilient() bool {
	return o.Faults.Active() || o.Deadline > 0 || o.Retry.Active() ||
		o.Hedge > 0 || o.Admission.Active()
}

// WithDefaults returns the options with every unset knob filled in
// (router, arrival process, request count, queue cap, cache fraction) —
// the exact option set NewFleet resolves, exposed so harnesses can
// record the effective configuration.
func (o Options) WithDefaults() Options {
	if o.Router == "" {
		o.Router = PolicyHitAware
	}
	if !o.Arrival.Active() {
		o.Arrival = ArrivalSpec{Shape: ShapePoisson, Rate: DefaultArrivalRate}
	}
	o.Arrival = o.Arrival.withDefaults()
	if o.Requests == 0 {
		o.Requests = DefaultRequests
	}
	if o.QueueCap == 0 {
		o.QueueCap = DefaultQueueCap
	}
	if o.CacheFrac == 0 {
		o.CacheFrac = 0.02
	}
	o.Retry = o.Retry.withDefaults()
	o.Admission = o.Admission.withDefaults()
	return o
}

// Validate reports a descriptive error for an unusable option set
// (inactive options are always valid).
func (o Options) Validate() error {
	if !o.Active() {
		return nil
	}
	if o.Replicas < 1 {
		return fmt.Errorf("serve: Replicas %d < 1", o.Replicas)
	}
	if _, err := ParsePolicy(string(o.Router)); err != nil {
		return err
	}
	if o.Arrival.Active() {
		if err := o.Arrival.Validate(); err != nil {
			return err
		}
	}
	if o.Requests < 0 {
		return fmt.Errorf("serve: Requests %d < 0", o.Requests)
	}
	if o.QueueCap < 0 {
		return fmt.Errorf("serve: QueueCap %d < 0", o.QueueCap)
	}
	if o.CacheFrac < 0 || o.CacheFrac > 1 {
		return fmt.Errorf("serve: CacheFrac %g out of [0,1]", o.CacheFrac)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("serve: Deadline %g < 0", o.Deadline)
	}
	if o.Hedge < 0 {
		return fmt.Errorf("serve: Hedge %g < 0", o.Hedge)
	}
	if err := o.Retry.Validate(); err != nil {
		return err
	}
	if err := o.Admission.Validate(); err != nil {
		return err
	}
	if err := o.Batch.Validate(); err != nil {
		return err
	}
	// Fault-plan events are checked against the replica count and
	// topology by Config.Validate (ValidateServe), once both are known.
	return nil
}

// Config assembles one serving simulation: the options, the workload
// shape (tables, rows, lookups, per-table trace distributions), the
// platform, and the per-worker scratchpad configuration.
type Config struct {
	Options
	// NumTables/RowsPerTable/Lookups/EmbeddingDim describe the model's
	// sparse side; each query gathers Lookups IDs per table.
	NumTables    int
	RowsPerTable int64
	Lookups      int
	EmbeddingDim int
	// Dists holds the per-table query-ID distributions (NumTables
	// entries; the same locality classes training traces use).
	Dists []trace.Distribution
	// Seed drives every PRNG (arrivals, query IDs, policies, router).
	Seed int64
	// System prices the per-query work (hw Table I arithmetic).
	System hw.System
	// Topology places workers (and their shards) on a platform graph;
	// the frontend lives on node 0 and queries routed off it are
	// charged the crossed link. nil or single-node co-locates all.
	Topology *hw.Topology
	// Shards partitions each worker's per-table scratchpad control
	// plane (internal/shard); a worker's shards stripe across its own
	// host's nodes, so S > 1 on a multi-socket host prices NUMA
	// coordination into each query's Plan.
	Shards int
	// Coord/CoordQuantum select the cross-shard coordination protocol.
	Coord        shard.CoordMode
	CoordQuantum int
	// Elastic builds the managers in their elastic representation (the
	// generic re-shardable form used by training's live resharding).
	Elastic bool
	// DenseTime is the per-query dense-model forward latency in
	// seconds (the MLP inference pass; engine.RunServe derives it from
	// the model configuration).
	DenseTime float64
	// DenseBatch prices the dense forward at batch size n > 1 (the
	// batched path's roofline: weight-read bytes and kernel launch
	// amortize across members, FLOPs and activations scale linearly).
	// nil falls back to n*DenseTime — no amortization, so batching
	// still wins only on the sparse side.
	DenseBatch func(n int) float64
	// Pool bounds the shard managers' fan-out parallelism (nil =
	// serial).
	Pool *par.Pool
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	if err := c.Options.Validate(); err != nil {
		return err
	}
	if c.NumTables <= 0 {
		return fmt.Errorf("serve: NumTables %d <= 0", c.NumTables)
	}
	if c.RowsPerTable <= 0 {
		return fmt.Errorf("serve: RowsPerTable %d <= 0", c.RowsPerTable)
	}
	if c.Lookups <= 0 {
		return fmt.Errorf("serve: Lookups %d <= 0", c.Lookups)
	}
	if c.EmbeddingDim <= 0 {
		return fmt.Errorf("serve: EmbeddingDim %d <= 0", c.EmbeddingDim)
	}
	if len(c.Dists) != c.NumTables {
		return fmt.Errorf("serve: %d distributions for %d tables", len(c.Dists), c.NumTables)
	}
	if c.Shards < 0 {
		return fmt.Errorf("serve: Shards %d < 0", c.Shards)
	}
	if c.DenseTime < 0 {
		return fmt.Errorf("serve: DenseTime %g < 0", c.DenseTime)
	}
	if c.Faults.Active() {
		if err := c.Faults.ValidateServe(c.Replicas, c.Topology); err != nil {
			return err
		}
	}
	return nil
}

// worker is one serving replica: per-table scratchpad managers, a home
// topology node, and the completion-time deque that models its bounded
// FIFO queue (the worker is a single server; comp[head:] are the
// requests still queued or in service).
type worker struct {
	id   int
	node int
	host int
	mgrs []*shard.Manager
	seq  int

	comp      []float64
	head      int
	busyUntil float64

	served, drops int64
	hits, misses  int64
	peakDepth     int

	// Batching state (batched event path only; empty otherwise).
	// pending holds queries routed here but not yet launched in a
	// batch; batchPlanned is the earliest scheduled batch-launch event
	// (+Inf when none is outstanding); the counters feed the report.
	pending        []pendingReq
	batchPlanned   float64
	batches        int64
	batchedQueries int64
	maxBatch       int

	// Telemetry state (PolicyTelemetry only; nil otherwise): the
	// decayed per-table hit rates this replica publishes, and the
	// virtual time of its last publication.
	telem   []float64
	lastPub float64

	// Failure-model state (resilient path only; all zero otherwise).
	// downs is the merged, ascending schedule of this replica's down
	// intervals; cpuBusyUntil models the host CPU as a second server
	// for degraded-mode queries; doomed holds the in-flight attempts
	// the next kill will flush; the acc* fields bank the statistics of
	// scratchpad generations discarded by kills.
	downs        []downSpan
	down         bool
	cpuBusyUntil float64
	doomed       []*query
	degraded     int64
	rewarm       bool
	rewarmTarget int
	rewarmFills  int64
	rewarmTime   float64
	accHits      int64
	accMisses    int64
	accRounds    int64
	accWall      float64
}

// pendingReq is one query waiting in a worker's batch: the query, its
// enqueue time (arrival plus the frontend link hop), and the response
// hop it will pay on delivery.
type pendingReq struct {
	q        *query
	enq      float64
	linkDown float64
}

// downSpan is one scheduled outage of a replica: [from, to) in
// virtual-clock seconds, to = +Inf when it never recovers.
type downSpan struct {
	from, to float64
}

// nextKill returns the start of the first outage strictly after t
// (+Inf when none remains). An attempt whose completion lands at or
// before it survives; anything later dies with the queue flush.
func (w *worker) nextKill(t float64) float64 {
	for _, s := range w.downs {
		if s.from > t {
			return s.from
		}
	}
	return math.Inf(1)
}

// residentRows sums the rows currently resident across the worker's
// per-table scratchpads (the re-warm progress measure).
func (w *worker) residentRows() int {
	n := 0
	for _, mgr := range w.mgrs {
		n += mgr.Len()
	}
	return n
}

// depth returns the queue depth (in-service request included) at time
// t. Queries waiting in an unlaunched batch count too — pending is
// always empty outside the batched path, so the pre-batching paths see
// the exact depth they always did.
func (w *worker) depth(t float64) int {
	for w.head < len(w.comp) && w.comp[w.head] <= t {
		w.head++
	}
	if w.head > len(w.comp)/2 && w.head > 1024 {
		w.comp = append(w.comp[:0], w.comp[w.head:]...)
		w.head = 0
	}
	return len(w.comp) - w.head + len(w.pending)
}

// Fleet is a built serving deployment, ready to Simulate.
type Fleet struct {
	cfg     Config
	workers []*worker
	router  *router
	reqRng  *rand.Rand
	reqIDs  [][]int64
	reqKeys []int64
	slots   int
	shards  int
}

// NewFleet builds the R workers (scratchpad managers, placements), the
// router, and the compiled per-replica outage schedule for cfg.
func NewFleet(cfg Config) (*Fleet, error) {
	cfg.Options = cfg.Options.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	slots := int(cfg.CacheFrac * float64(cfg.RowsPerTable))
	if slots < 1 {
		slots = 1
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	nodes := 1
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			return nil, err
		}
		nodes = cfg.Topology.NumNodes()
	}
	f := &Fleet{cfg: cfg, slots: slots, shards: shards,
		reqRng: rand.New(rand.NewSource(cfg.Seed + 8000))}
	f.reqIDs = make([][]int64, cfg.NumTables)
	for t := range f.reqIDs {
		f.reqIDs[t] = make([]int64, cfg.Lookups)
	}
	f.reqKeys = make([]int64, 0, cfg.NumTables*cfg.Lookups)
	for w := 0; w < cfg.Replicas; w++ {
		wk := &worker{id: w, node: w % nodes, batchPlanned: math.Inf(1)}
		if cfg.Topology != nil {
			wk.host = cfg.Topology.Nodes[wk.node].Host
		}
		if Policy(cfg.Router) == PolicyTelemetry {
			wk.telem = make([]float64, cfg.NumTables)
			wk.lastPub = math.Inf(-1)
		}
		if err := f.buildScratchpads(wk); err != nil {
			return nil, err
		}
		f.workers = append(f.workers, wk)
	}
	f.compileOutages()
	needViews := cfg.Admission.Policy == AdmitCheapest
	f.router = newRouter(Policy(cfg.Router), cfg.Replicas, slots*cfg.NumTables, cfg.Seed+8500, needViews)
	return f, nil
}

// buildScratchpads (re)builds wk's per-table shard managers cold. Used
// at fleet construction and at replica recovery: a recovered replica
// starts from an empty scratchpad and re-warms through ordinary misses
// (the priced re-warm of DESIGN.md §13). The manager seeds are
// deterministic in (worker, table), so a rebuilt replica replays the
// same policy decisions a fresh one would.
func (f *Fleet) buildScratchpads(wk *worker) error {
	cfg := f.cfg
	place, err := workerPlacement(cfg.Topology, wk.node, f.shards)
	if err != nil {
		return err
	}
	// A batched worker plans up to Cap queries' IDs in one Plan, so the
	// worst-case reserve is sized for the batch, not the single query.
	maxPlanIDs := cfg.Lookups
	if cfg.Batch.Enabled() {
		maxPlanIDs *= cfg.Batch.Cap
	}
	wk.mgrs = wk.mgrs[:0]
	for t := 0; t < cfg.NumTables; t++ {
		spCfg := core.Config{
			Slots:      f.slots,
			Policy:     cache.LRU,
			PolicySeed: cfg.Seed + int64(7000+wk.id*cfg.NumTables+t),
			PastWindow: 1,
		}
		spCfg.Reserve = core.WorstCaseReserve(spCfg, maxPlanIDs)
		mgr, err := shard.New(shard.Config{
			Scratchpad:   spCfg,
			Shards:       f.shards,
			Pool:         cfg.Pool,
			Placement:    place,
			Coord:        cfg.Coord,
			CoordQuantum: cfg.CoordQuantum,
			Elastic:      cfg.Elastic,
		})
		if err != nil {
			return err
		}
		wk.mgrs = append(wk.mgrs, mgr)
	}
	wk.seq = 0
	// A rebuilt scratchpad is cold: the replica's decayed hit-rate
	// estimate restarts from zero and republishes on its first plan.
	if wk.telem != nil {
		for i := range wk.telem {
			wk.telem[i] = 0
		}
		wk.lastPub = math.Inf(-1)
	}
	return nil
}

// compileOutages turns the validated fault plan into each worker's
// merged down-interval schedule: replica events strike one worker, host
// kills (times are whole virtual-clock seconds) strike every worker
// homed on the host, overlaps merge.
func (f *Fleet) compileOutages() {
	if !f.cfg.Faults.Active() {
		return
	}
	for _, e := range f.cfg.Faults.Events {
		switch e.Kind {
		case hw.FaultReplicaDown:
			to := math.Inf(1)
			if e.Until > 0 {
				to = e.Until
			}
			wk := f.workers[e.Replica]
			wk.downs = append(wk.downs, downSpan{from: e.At, to: to})
		case hw.FaultHostDown:
			for _, wk := range f.workers {
				if wk.host == e.Host {
					wk.downs = append(wk.downs, downSpan{from: float64(e.Iter), to: math.Inf(1)})
				}
			}
		}
	}
	for _, wk := range f.workers {
		if len(wk.downs) < 2 {
			continue
		}
		sort.Slice(wk.downs, func(i, j int) bool { return wk.downs[i].from < wk.downs[j].from })
		merged := wk.downs[:1]
		for _, s := range wk.downs[1:] {
			last := &merged[len(merged)-1]
			if s.from <= last.to {
				if s.to > last.to {
					last.to = s.to
				}
				continue
			}
			merged = append(merged, s)
		}
		wk.downs = merged
	}
}

// workerPlacement stripes a worker's shards across the nodes of its own
// host: replicas live on one host each, so cross-shard coordination
// stays within the host's NUMA links while cross-host cost is paid by
// routing, not planning. Single-node topologies and unsharded workers
// get the zero (co-located) placement.
func workerPlacement(topo *hw.Topology, home, shards int) (hw.Placement, error) {
	if topo == nil || topo.NumNodes() <= 1 || shards <= 1 {
		return hw.Placement{}, nil
	}
	host := topo.Nodes[home].Host
	var hostNodes []int
	for i, n := range topo.Nodes {
		if n.Host == host {
			hostNodes = append(hostNodes, i)
		}
	}
	node := make([]int, shards)
	for j := range node {
		node[j] = hostNodes[j%len(hostNodes)]
	}
	p := hw.Placement{Topo: topo, Node: node, Policy: hw.PlaceStripe}
	if err := p.Validate(shards); err != nil {
		return hw.Placement{}, err
	}
	return p, nil
}

// idBytes is the wire payload of n sparse IDs (int64).
func idBytes(n int) float64 { return float64(n) * 8 }

// respBytes is the wire payload of one query's answer (a float32 score
// plus framing).
const respBytes = 8

// ServiceTime prices one query on a worker with the hw Table I
// arithmetic: the GPU probes its Hit-Map once per ID occurrence, the
// fills (missed rows) take the CPU-gather -> PCIe -> scratchpad-fill
// detour, the now-resident rows are gathered and pooled on the GPU, and
// the dense MLP forward runs. Victim rows are clean in inference (no
// gradient ever dirties them), so evictions are metadata-only and free.
// coord is the query's cross-shard Plan coordination latency.
func (f *Fleet) ServiceTime(fills, totalIDs int, coord float64) float64 {
	sys := f.cfg.System
	dim := f.cfg.EmbeddingDim
	// Sparse IDs cross PCIe; the GPU probes key+value per occurrence.
	t := sys.PCIe.TransferTime(idBytes(totalIDs)) +
		sys.GPU.RandomTime(float64(totalIDs)*16)
	if fills > 0 {
		t += f.fillDetour(fills)
	}
	t += sys.GPU.GatherTime(totalIDs, dim) +
		sys.GPU.ReduceTime(totalIDs, f.cfg.NumTables, dim)
	return t + f.cfg.DenseTime + coord
}

// fillDetour prices the CPU-gather -> PCIe -> scratchpad-fill detour
// for fills missed rows — the per-miss cost that also prices a
// recovered replica's cold-cache re-warm (Report.RewarmTime).
func (f *Fleet) fillDetour(fills int) float64 {
	if fills <= 0 {
		return 0
	}
	sys := f.cfg.System
	dim := f.cfg.EmbeddingDim
	return sys.CPU.GatherTime(fills, dim) +
		sys.PCIe.TransferTime(hw.EmbeddingBytes(fills, dim)) +
		sys.GPU.ScatterWriteTime(fills, dim)
}

// DegradedServiceTime prices one query on the CPU fallback path an
// overloaded or recovering replica uses under AdmissionSpec.Degrade:
// the host CPU gathers every row straight from the full embedding
// tables in DRAM (no Hit-Map probe, no scratchpad fill) and pools
// there, only the pooled vectors cross PCIe, and the dense forward
// still runs on the GPU. The CPU's random-access gather over all
// totalIDs rows is the priced latency penalty relative to the warm
// scratchpad path.
func (f *Fleet) DegradedServiceTime(totalIDs int) float64 {
	sys := f.cfg.System
	dim := f.cfg.EmbeddingDim
	t := sys.CPU.GatherTime(totalIDs, dim) +
		sys.CPU.ReduceTime(totalIDs, f.cfg.NumTables, dim) +
		sys.PCIe.TransferTime(hw.EmbeddingBytes(f.cfg.NumTables, dim))
	return t + f.cfg.DenseTime
}

// Run builds a fleet for cfg, generates the configured arrival vector,
// and simulates it.
func Run(cfg Config) (*Report, error) {
	f, err := NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	times := f.cfg.Arrival.Times(f.cfg.Requests, f.cfg.Seed+8200)
	return f.Simulate(times)
}

// Simulate plays an ascending arrival-time vector through the fleet and
// returns the report. Exposed separately from Run so tests can inject
// hand-built arrival vectors. When any failure-model or resilience knob
// is engaged (Options.Resilient), or request batching is on (a batch
// launch is a future event, so the closed form cannot price it), the
// event-driven simulator in failure.go runs instead; otherwise this is
// the exact pre-resilience hot loop, so zero-fault unbatched runs are
// bit-identical to it.
func (f *Fleet) Simulate(arrivals []float64) (*Report, error) {
	if f.cfg.Resilient() || f.cfg.Batch.Enabled() {
		return f.simulateResilient(arrivals)
	}
	var lat metrics.Series
	rep := &Report{
		Router:   Policy(f.cfg.Router),
		Replicas: f.cfg.Replicas,
		Offered:  int64(len(arrivals)),
	}
	var maxDone float64
	totalIDs := f.cfg.NumTables * f.cfg.Lookups
	for _, at := range arrivals {
		f.nextRequest()
		w := f.router.pick(f.reqKeys, f.workers, at)
		wk := f.workers[w]
		if wk.depth(at) >= f.cfg.QueueCap {
			wk.drops++
			rep.Drops++
			continue
		}
		// Frontend-to-worker hop: queries routed off node 0 pay the
		// crossed link both ways (IDs up, score back).
		var linkUp, linkDown float64
		if f.cfg.Topology != nil && wk.node != 0 {
			link := f.cfg.Topology.Link(0, wk.node)
			linkUp = link.TransferTime(idBytes(totalIDs))
			linkDown = link.TransferTime(respBytes)
			rep.CrossNode++
			if wk.host != f.cfg.Topology.Nodes[0].Host {
				rep.CrossHost++
			}
			rep.LinkTime += linkUp + linkDown
		}
		fills, evicts, coord, err := wk.plan(f.reqIDs)
		if err != nil {
			return nil, err
		}
		f.maybePublish(wk, at)
		svc := f.ServiceTime(fills, totalIDs, coord)
		enq := at + linkUp
		start := enq
		if wk.busyUntil > start {
			start = wk.busyUntil
		}
		done := start + svc
		wk.busyUntil = done
		wk.comp = append(wk.comp, done)
		if d := len(wk.comp) - wk.head; d > wk.peakDepth {
			wk.peakDepth = d
		}
		wk.served++
		rep.Served++
		rep.Fills += int64(fills)
		rep.Evictions += int64(evicts)
		rep.CoordTime += coord
		lat.Add(done + linkDown - at)
		if done+linkDown > maxDone {
			maxDone = done + linkDown
		}
	}
	for _, wk := range f.workers {
		var h, m int64
		for _, mgr := range wk.mgrs {
			st := mgr.Stats()
			h += st.Hits
			m += st.Misses
			cs := mgr.CoordStats()
			rep.CoordRounds += cs.Messages
			rep.CoordWallTime += cs.WallSeconds + cs.WallHiddenSeconds
		}
		wk.hits, wk.misses = h, m
		rep.Hits += h
		rep.Misses += m
		rep.Workers = append(rep.Workers, WorkerReport{
			Node: wk.node, Host: wk.host,
			Served: wk.served, Drops: wk.drops,
			Hits: wk.hits, Misses: wk.misses,
			PeakDepth: wk.peakDepth,
		})
	}
	rep.Duration = maxDone
	if rep.Duration > 0 {
		rep.Throughput = float64(rep.Served) / rep.Duration
	}
	if n := len(arrivals); n > 0 && arrivals[n-1] > 0 {
		rep.OfferedRate = float64(rep.Offered) / arrivals[n-1]
	}
	rep.Latency = lat.Summarize()
	// No failure model engaged: the fleet was fully available and every
	// served query counts as goodput.
	rep.Availability = 1
	rep.Goodput = rep.Throughput
	if err := rep.checkConservation(); err != nil {
		return nil, err
	}
	return rep, nil
}

// nextRequest draws one query's per-table ID lists into the reusable
// request buffers and rebuilds the router's composite key list.
func (f *Fleet) nextRequest() {
	f.reqKeys = f.reqKeys[:0]
	nt := int64(f.cfg.NumTables)
	for t := range f.reqIDs {
		dist := f.cfg.Dists[t]
		for l := range f.reqIDs[t] {
			id := dist.Sample(f.reqRng)
			f.reqIDs[t][l] = id
			f.reqKeys = append(f.reqKeys, id*nt+int64(t))
		}
	}
}

// plan runs one query's (or one batch's — ids[t] carries every member's
// IDs for table t) Plan/Release/Recycle cycle on every table of the
// worker and returns the fill and eviction counts plus the modeled
// cross-shard coordination latency. When the telemetry policy is on,
// each plan also folds its per-table hit rate into the worker's decayed
// estimate.
func (w *worker) plan(ids [][]int64) (fills, evicts int, coord float64, err error) {
	for t, mgr := range w.mgrs {
		var prevHits, prevMisses int64
		if w.telem != nil {
			st := mgr.Stats()
			prevHits, prevMisses = st.Hits, st.Misses
		}
		res, perr := mgr.Plan(w.seq, ids[t], nil)
		if perr != nil {
			return 0, 0, 0, perr
		}
		fills += len(res.Fills)
		evicts += len(res.Evictions)
		coord += mgr.LastPlanCoord()
		if rerr := mgr.Release(w.seq); rerr != nil {
			return 0, 0, 0, rerr
		}
		mgr.Recycle(res)
		if w.telem != nil {
			st := mgr.Stats()
			if n := (st.Hits - prevHits) + (st.Misses - prevMisses); n > 0 {
				sample := float64(st.Hits-prevHits) / float64(n)
				w.telem[t] = (1-TelemetryDecay)*w.telem[t] + TelemetryDecay*sample
			}
		}
	}
	w.seq++
	return fills, evicts, coord, nil
}

// maybePublish pushes the worker's decayed hit rates to the router as a
// fresh telemetry snapshot, rate-limited to one publication per
// TelemetryInterval of virtual time (no-op outside PolicyTelemetry).
func (f *Fleet) maybePublish(wk *worker, now float64) {
	if wk.telem == nil {
		return
	}
	if now >= wk.lastPub+TelemetryInterval {
		f.router.publish(wk.id, wk.telem, now)
		wk.lastPub = now
	}
}

// Report digests one serving simulation. The zero value is valid (all
// counters zero) — engine reports embed it by value so non-serving runs
// never carry a nil.
type Report struct {
	// Router/Replicas/Batch echo the deployment shape.
	Router   Policy
	Replicas int
	Batch    BatchSpec
	// Offered counts generated queries; Served the ones that completed
	// and delivered a response (degraded CPU-path completions
	// included); Drops the arrivals bounced off full queues. Together
	// with Shed and TimedOut these satisfy the conservation invariant
	// Offered = Served + Shed + Drops + TimedOut, exactly — every
	// generated query is accounted to exactly one outcome
	// (checkConservation enforces it on every report).
	Offered, Served, Drops int64
	// Shed counts queries the admission controller rejected (distinct
	// from queue-cap Drops); TimedOut the queries that never delivered
	// a response (all attempts lost to failures, or nothing completed
	// within the client deadline). Retried and Hedged count the extra
	// attempts the client issued; Degraded the Served subset answered
	// by the CPU fallback path.
	Shed, TimedOut  int64
	Retried, Hedged int64
	Degraded        int64
	// Duration is the simulated span from the first arrival to the
	// last completion; Throughput is Served/Duration, Goodput the
	// within-deadline fraction of it (equal when no deadline is set),
	// and OfferedRate the arrival process's realized rate.
	Duration    float64
	Throughput  float64
	Goodput     float64
	OfferedRate float64
	// Availability is 1 minus the fleet's replica-downtime fraction
	// (summed downtime over Replicas x Duration); exactly 1 for
	// fault-free runs.
	Availability float64
	// RewarmFills/RewarmTime count and price the cold-cache re-warm of
	// recovered replicas: the fills (and their CPU->PCIe->scratchpad
	// detour seconds) a recovered replica pays until its scratchpad is
	// back to its pre-kill residency.
	RewarmFills int64
	RewarmTime  float64
	// Hits/Misses are occurrence-level scratchpad statistics summed
	// over all workers and tables; Fills/Evictions count row movements.
	Hits, Misses     int64
	Fills, Evictions int64
	// Batches counts the batch launches across the fleet (zero unless
	// Batch.Enabled); BatchedQueries the queries they carried (their
	// sum of batch sizes), so BatchedQueries/Batches is the realized
	// occupancy; MaxBatch the largest batch launched.
	Batches        int64
	BatchedQueries int64
	MaxBatch       int
	// Latency digests end-to-end latency (queueing + service + routing
	// links) over GPU-path served queries only — shed, dropped, and
	// timed-out queries never deliver a response and are invisible here
	// (see DropRate for the complementary loss signal), and degraded
	// CPU-path completions report in DegradedLatency instead, so a slow
	// fallback cannot smear the primary path's percentiles. P50/P95/P99
	// are the serving tail metrics.
	Latency metrics.Summary
	// DegradedLatency digests the Degraded (CPU fallback) completions'
	// end-to-end latency in its own percentile block (zero Summary when
	// nothing degraded).
	DegradedLatency metrics.Summary
	// CoordTime totals the cross-shard Plan coordination latency paid
	// inside service times (zero for unsharded or co-located workers).
	CoordTime float64
	// CoordRounds totals the cross-shard coordination message rounds
	// across all workers' managers, and CoordWallTime the message
	// plane's measured makespan for them — the serving twin of the
	// training report's coordination fields, so serving benchmark
	// entries no longer omit the coordination columns.
	CoordRounds   int64
	CoordWallTime float64
	// CrossNode/CrossHost count queries routed off the frontend node /
	// host; LinkTime totals the routing-link latency they paid.
	CrossNode, CrossHost int64
	LinkTime             float64
	// Workers carries the per-replica breakdown.
	Workers []WorkerReport
}

// WorkerReport is one replica's share of the run.
type WorkerReport struct {
	// Node/Host locate the replica on the topology.
	Node, Host int
	// Served/Drops count this replica's admitted and bounced queries.
	Served, Drops int64
	// Hits/Misses are the replica's occurrence-level cache statistics.
	Hits, Misses int64
	// PeakDepth is the replica's queue high-water mark.
	PeakDepth int
	// Downtime is this replica's scheduled outage overlap with the run,
	// in seconds (zero without a fault plan).
	Downtime float64
	// Degraded counts the queries this replica answered on the CPU
	// fallback path (a subset of Served).
	Degraded int64
	// Batches counts this replica's batch launches (zero unless
	// batching is on).
	Batches int64
}

// HitRate returns the fleet's occurrence-level cache hit rate.
func (r Report) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// HitRate returns the replica's occurrence-level cache hit rate.
func (w WorkerReport) HitRate() float64 {
	total := w.Hits + w.Misses
	if total == 0 {
		return 0
	}
	return float64(w.Hits) / float64(total)
}

// DropRate returns the fraction of generated queries that never
// delivered a response (queue-cap drops, admission sheds, and
// timeouts over Offered) — the loss signal the served-only latency
// percentiles cannot show.
func (r Report) DropRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Drops+r.Shed+r.TimedOut) / float64(r.Offered)
}

// DropRate returns the fraction of queries routed to this replica that
// bounced off its full queue (Drops over Served+Drops). Latency
// percentiles digest served queries only, so a replica can post a
// pristine p99 while bouncing half its arrivals — this is the
// complementary per-replica signal.
func (w WorkerReport) DropRate() float64 {
	total := w.Served + w.Drops
	if total == 0 {
		return 0
	}
	return float64(w.Drops) / float64(total)
}

// checkConservation enforces the query-conservation invariant: every
// offered query lands in exactly one of Served, Shed, Drops, TimedOut.
// A violation is a simulator bug, surfaced as an error rather than a
// silently wrong report.
func (r *Report) checkConservation() error {
	if got := r.Served + r.Shed + r.Drops + r.TimedOut; got != r.Offered {
		return fmt.Errorf("serve: conservation violated: served %d + shed %d + drops %d + timed-out %d = %d != offered %d",
			r.Served, r.Shed, r.Drops, r.TimedOut, got, r.Offered)
	}
	return nil
}
