// Client-side resilience knobs for the serving frontend: bounded
// retries with exponential backoff, hedged requests, per-query
// deadlines, and the admission controller that sheds or degrades load
// before queues overflow. These are the -retry / -hedge / -deadline /
// -admission flag families; the failure schedule itself (-serve-fail)
// rides on hw.FaultPlan. Everything here is pure configuration — the
// event-driven simulator in failure.go executes it deterministically
// under the virtual clock.

package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultRetryBackoff is the base backoff delay (seconds) when a retry
// spec leaves it unset: 0.5 ms, a few service times — long enough for a
// transient queue spike to drain, short enough to matter against a
// millisecond-scale deadline.
const DefaultRetryBackoff = 0.5e-3

// RetrySpec bounds client-side retries after a failed attempt (replica
// death flushing the query, no live replica, a retry bounced off a full
// queue). The k-th retry waits Backoff*2^(k-1) before redispatching to
// a replica the query has not tried. The zero value disables retries.
type RetrySpec struct {
	// Max is the retry budget per query, not counting the initial
	// dispatch.
	Max int
	// Backoff is the base backoff delay in seconds (0 with Max > 0
	// selects DefaultRetryBackoff).
	Backoff float64
}

// Active reports whether retries are enabled.
func (r RetrySpec) Active() bool { return r.Max > 0 }

// withDefaults fills the backoff when retries are on.
func (r RetrySpec) withDefaults() RetrySpec {
	if r.Max > 0 && r.Backoff == 0 {
		r.Backoff = DefaultRetryBackoff
	}
	return r
}

// Validate reports a descriptive error for an unusable spec.
func (r RetrySpec) Validate() error {
	if r.Max < 0 {
		return fmt.Errorf("serve: retry budget %d < 0", r.Max)
	}
	if r.Backoff < 0 {
		return fmt.Errorf("serve: retry backoff %g < 0", r.Backoff)
	}
	return nil
}

// RetryGrammar documents the -retry flag syntax for usage errors.
const RetryGrammar = "<max>[:<backoff-ms>]"

// String renders the spec in the -retry grammar (backoff in ms), "" for
// the inactive zero spec.
func (r RetrySpec) String() string {
	if !r.Active() {
		return ""
	}
	r = r.withDefaults()
	return fmt.Sprintf("%d:%g", r.Max, r.Backoff*1e3)
}

// ParseRetry parses the -retry flag grammar: "2" (two retries, default
// backoff) or "2:0.25" (base backoff 0.25 ms). "" parses to the
// inactive zero spec.
func ParseRetry(s string) (RetrySpec, error) {
	if s == "" {
		return RetrySpec{}, nil
	}
	maxPart, backoff, hasBackoff := strings.Cut(s, ":")
	var spec RetrySpec
	var err error
	if spec.Max, err = strconv.Atoi(maxPart); err != nil || spec.Max < 1 {
		return RetrySpec{}, fmt.Errorf("serve: retry %q: bad budget %q (want %s)", s, maxPart, RetryGrammar)
	}
	if hasBackoff {
		ms, err := strconv.ParseFloat(backoff, 64)
		if err != nil || ms <= 0 {
			return RetrySpec{}, fmt.Errorf("serve: retry %q: bad backoff %q (want %s)", s, backoff, RetryGrammar)
		}
		spec.Backoff = ms / 1e3
	}
	return spec.withDefaults(), nil
}

// AdmissionPolicy names a load-shedding policy.
type AdmissionPolicy string

const (
	// AdmitAll is the zero policy: no shedding (degraded mode may still
	// be on via AdmissionSpec.Degrade).
	AdmitAll AdmissionPolicy = ""
	// AdmitNewest sheds the arriving query once the chosen replica's
	// queue passes the threshold — classic reject-newest: protect the
	// work already admitted.
	AdmitNewest AdmissionPolicy = "newest"
	// AdmitCheapest sheds the arriving query past the threshold only
	// when the router estimates it cache-warm ("cheap"): a warm query
	// is the least costly to turn away — its rows stay resident and a
	// client retry later is nearly free — while a miss-heavy query
	// thrown away wastes the chance to warm the cache. Under Degrade
	// the miss-heavy overflow is answered on the CPU path instead,
	// which serves it without churning the hot scratchpad.
	AdmitCheapest AdmissionPolicy = "cheapest"
)

// DefaultAdmissionThreshold is the queue-depth fraction of QueueCap at
// which shedding starts when the spec leaves it unset.
const DefaultAdmissionThreshold = 0.75

// AdmissionSpec configures the frontend's admission controller. The
// zero value admits everything (queue caps alone bound the queues).
type AdmissionSpec struct {
	// Policy selects what to shed once a replica's queue passes the
	// threshold.
	Policy AdmissionPolicy
	// Threshold is the shedding onset as a fraction of QueueCap (0
	// selects DefaultAdmissionThreshold).
	Threshold float64
	// Degrade answers would-be-shed and would-be-dropped queries on the
	// replica's CPU fallback path (DegradedServiceTime) instead of
	// rejecting them: slower, but served.
	Degrade bool
}

// Active reports whether the controller changes anything.
func (a AdmissionSpec) Active() bool { return a.Policy != AdmitAll || a.Degrade }

// withDefaults fills the threshold when a shedding policy is on.
func (a AdmissionSpec) withDefaults() AdmissionSpec {
	if a.Policy != AdmitAll && a.Threshold == 0 {
		a.Threshold = DefaultAdmissionThreshold
	}
	return a
}

// Validate reports a descriptive error for an unusable spec.
func (a AdmissionSpec) Validate() error {
	switch a.Policy {
	case AdmitAll, AdmitNewest, AdmitCheapest:
	default:
		return fmt.Errorf("serve: unknown admission policy %q (want %s)", a.Policy, AdmissionGrammar)
	}
	if a.Threshold < 0 || a.Threshold > 1 {
		return fmt.Errorf("serve: admission threshold %g out of [0,1]", a.Threshold)
	}
	return nil
}

// AdmissionGrammar documents the -admission flag syntax for usage
// errors.
const AdmissionGrammar = "newest|cheapest[:<threshold>][:degrade], or degrade alone"

// String renders the spec in the -admission grammar, "" for the
// inactive zero spec.
func (a AdmissionSpec) String() string {
	if !a.Active() {
		return ""
	}
	a = a.withDefaults()
	if a.Policy == AdmitAll {
		return "degrade"
	}
	s := fmt.Sprintf("%s:%g", a.Policy, a.Threshold)
	if a.Degrade {
		s += ":degrade"
	}
	return s
}

// ParseAdmission parses the -admission flag grammar: "newest",
// "cheapest:0.5", "newest:0.8:degrade", "cheapest:degrade", or the bare
// "degrade" (no shedding, CPU-path overflow only). "" parses to the
// inactive zero spec.
func ParseAdmission(s string) (AdmissionSpec, error) {
	if s == "" {
		return AdmissionSpec{}, nil
	}
	parts := strings.Split(s, ":")
	var spec AdmissionSpec
	switch parts[0] {
	case "degrade":
		if len(parts) != 1 {
			return AdmissionSpec{}, fmt.Errorf("serve: admission %q: bare degrade takes no arguments (want %s)", s, AdmissionGrammar)
		}
		spec.Degrade = true
		return spec, nil
	case string(AdmitNewest), string(AdmitCheapest):
		spec.Policy = AdmissionPolicy(parts[0])
	default:
		return AdmissionSpec{}, fmt.Errorf("serve: admission %q: unknown policy %q (want %s)", s, parts[0], AdmissionGrammar)
	}
	rest := parts[1:]
	if len(rest) > 0 && rest[len(rest)-1] == "degrade" {
		spec.Degrade = true
		rest = rest[:len(rest)-1]
	}
	switch len(rest) {
	case 0:
	case 1:
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return AdmissionSpec{}, fmt.Errorf("serve: admission %q: bad threshold %q (want %s)", s, rest[0], AdmissionGrammar)
		}
		spec.Threshold = v
	default:
		return AdmissionSpec{}, fmt.Errorf("serve: admission %q: too many arguments (want %s)", s, AdmissionGrammar)
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return AdmissionSpec{}, err
	}
	return spec, nil
}

// ServeFaultGrammar documents the -serve-fail event forms for usage
// errors: replica strikes at virtual-clock seconds (optionally
// recovering), and host kills (whole seconds) that take down every
// replica homed on the host.
const ServeFaultGrammar = "replica<R>@<T>[-<T2>], host<H>@<S>"

// ResilienceString renders the engaged client-resilience knobs in a
// canonical form ("" when all are off) — the shape key benchmark
// baselines record and match on, next to the fault plan itself.
func (o Options) ResilienceString() string {
	var parts []string
	if o.Deadline > 0 {
		parts = append(parts, fmt.Sprintf("deadline=%g", o.Deadline))
	}
	if o.Retry.Active() {
		parts = append(parts, "retry="+o.Retry.String())
	}
	if o.Hedge > 0 {
		parts = append(parts, fmt.Sprintf("hedge=%g", o.Hedge))
	}
	if o.Admission.Active() {
		parts = append(parts, "admission="+o.Admission.String())
	}
	return strings.Join(parts, ";")
}
