package serve

import (
	"math"
	"testing"
)

func TestParseArrival(t *testing.T) {
	cases := []struct {
		in   string
		want ArrivalSpec
	}{
		{"", ArrivalSpec{}},
		{"poisson:2000", ArrivalSpec{Shape: ShapePoisson, Rate: 2000}},
		{"diurnal:1500", ArrivalSpec{Shape: ShapeDiurnal, Rate: 1500}},
		{"diurnal:1500:0.7", ArrivalSpec{Shape: ShapeDiurnal, Rate: 1500, Amp: 0.7}},
		{"flash:1000:4", ArrivalSpec{Shape: ShapeFlash, Rate: 1000, Mult: 4}},
		{"flash:1000:4:0.25:0.2", ArrivalSpec{Shape: ShapeFlash, Rate: 1000, Mult: 4, At: 0.25, Dur: 0.2}},
	}
	for _, c := range cases {
		got, err := ParseArrival(c.in)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseArrival(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseArrivalErrors(t *testing.T) {
	for _, in := range []string{
		"poisson", "poisson:abc", "poisson:-5", "poisson:0",
		"sawtooth:100", "diurnal:100:2", "diurnal:100:0.5:9",
		"flash:100:0.5", "flash:100:4:0.5", "flash:100:4:2:0.1",
	} {
		if _, err := ParseArrival(in); err == nil {
			t.Errorf("ParseArrival(%q): want error, got nil", in)
		}
	}
}

func TestArrivalStringRoundTrip(t *testing.T) {
	for _, in := range []string{"poisson:2000", "diurnal:1500:0.7", "flash:1000:4:0.25:0.2"} {
		spec, err := ParseArrival(in)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", in, err)
		}
		back, err := ParseArrival(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if back.withDefaults() != spec.withDefaults() {
			t.Errorf("round trip %q -> %q changed the spec", in, spec.String())
		}
	}
}

// TestPoissonRate: n arrivals at base rate lambda should span close to
// n/lambda seconds (law of large numbers; 5% tolerance at n=20000).
func TestPoissonRate(t *testing.T) {
	const n, rate = 20000, 2000.0
	times := ArrivalSpec{Shape: ShapePoisson, Rate: rate}.Times(n, 1)
	if len(times) != n {
		t.Fatalf("got %d arrivals, want %d", len(times), n)
	}
	span := times[n-1]
	want := float64(n) / rate
	if math.Abs(span-want)/want > 0.05 {
		t.Errorf("span %.3fs, want %.3fs +-5%%", span, want)
	}
	for i := 1; i < n; i++ {
		if times[i] < times[i-1] {
			t.Fatalf("arrivals not ascending at %d", i)
		}
	}
}

// TestFlashSpikeShape: the flash window's realized rate should be near
// Mult times the outside rate.
func TestFlashSpikeShape(t *testing.T) {
	const n, rate = 40000, 2000.0
	spec := ArrivalSpec{Shape: ShapeFlash, Rate: rate, Mult: 8, At: 0.5, Dur: 0.1}
	times := spec.Times(n, 2)
	d := float64(n) / rate
	lo, hi := spec.At*d, (spec.At+spec.Dur)*d
	var in, out int
	for _, at := range times {
		if at >= lo && at < hi {
			in++
		} else if at < d {
			out++
		}
	}
	inRate := float64(in) / (hi - lo)
	outRate := float64(out) / (d - (hi - lo))
	ratio := inRate / outRate
	if math.Abs(ratio-spec.Mult)/spec.Mult > 0.25 {
		t.Errorf("flash rate ratio %.2f, want ~%.0f +-25%%", ratio, spec.Mult)
	}
}

// TestDiurnalSwing: the cycle peaks at mid-run, so the middle half of
// the nominal duration must carry visibly more arrivals than the two
// outer quarters (around the trough) combined. With Amp=0.8 the exact
// ratio is (1+2A/pi)/(1-2A/pi) ~ 3.1.
func TestDiurnalSwing(t *testing.T) {
	const n, rate = 20000, 2000.0
	spec := ArrivalSpec{Shape: ShapeDiurnal, Rate: rate, Amp: 0.8}
	times := spec.Times(n, 3)
	d := float64(n) / rate
	var mid, outer int
	for _, at := range times {
		switch {
		case at >= d:
		case at >= d/4 && at < 3*d/4:
			mid++
		default:
			outer++
		}
	}
	ratio := float64(mid) / float64(outer)
	if ratio < 2 {
		t.Errorf("diurnal mid/outer ratio %.2f, want > 2 (peak mid-run)", ratio)
	}
}

func TestTimesDeterministic(t *testing.T) {
	spec := ArrivalSpec{Shape: ShapeFlash, Rate: 1000, Mult: 4}
	a := spec.Times(500, 42)
	b := spec.Times(500, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Times not deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
