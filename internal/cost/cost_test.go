package cost

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestTableIPricing(t *testing.T) {
	// The paper's Table I quotes: p3.2xlarge $3.06/hr, p3.16xlarge
	// $24.48/hr.
	if P32xlarge.PricePerHour != 3.06 || P316xlarge.PricePerHour != 24.48 {
		t.Fatalf("prices %v %v", P32xlarge.PricePerHour, P316xlarge.PricePerHour)
	}
	if P32xlarge.GPUs != 1 || P316xlarge.GPUs != 8 {
		t.Fatalf("gpu counts %d %d", P32xlarge.GPUs, P316xlarge.GPUs)
	}
}

func TestMillionIterCostMatchesPaperRows(t *testing.T) {
	// Table I, Random row: ScratchPipe 47.82 ms/iter on p3.2xlarge ->
	// $40.64 per 1M iterations.
	got := MillionIterCost(P32xlarge, 47.82e-3)
	if math.Abs(got-40.64) > 0.05 {
		t.Errorf("ScratchPipe Random cost = %v, want ~40.64", got)
	}
	// 8 GPU Random row: 16.22 ms -> $110.3.
	got = MillionIterCost(P316xlarge, 16.22e-3)
	if math.Abs(got-110.3) > 0.2 {
		t.Errorf("8-GPU Random cost = %v, want ~110.3", got)
	}
}

func TestCostForEdgeCases(t *testing.T) {
	if CostFor(P32xlarge, -1, 100) != 0 || CostFor(P32xlarge, 1, -1) != 0 {
		t.Error("negative inputs should cost zero")
	}
	if CostFor(P32xlarge, 3600, 1) != P32xlarge.PricePerHour {
		t.Error("one hour should cost exactly the hourly price")
	}
}

func TestFormatUSD(t *testing.T) {
	if got := FormatUSD(40.635); !strings.HasPrefix(got, "$ 40.6") {
		t.Errorf("FormatUSD = %q", got)
	}
}

func TestClusterArithmetic(t *testing.T) {
	// One host degenerates to the single-instance arithmetic.
	one := Cluster{Instance: P32xlarge, Hosts: 1}
	if one.MillionIterCost(47.82e-3) != MillionIterCost(P32xlarge, 47.82e-3) {
		t.Error("1-host cluster diverges from single-instance cost")
	}
	if one.Name() != P32xlarge.Name {
		t.Errorf("1-host cluster name %q", one.Name())
	}
	// Four hosts cost exactly four times as much for the same duration.
	four := Cluster{Instance: P32xlarge, Hosts: 4}
	if got, want := four.CostFor(3600, 1), 4*P32xlarge.PricePerHour; math.Abs(got-want) > 1e-9 {
		t.Errorf("4-host hour costs %v, want %v", got, want)
	}
	if four.Name() != "4x p3.2xlarge" {
		t.Errorf("cluster name %q", four.Name())
	}
	if four.CostFor(-1, 100) != 0 {
		t.Error("negative inputs should cost zero")
	}
	// Topology sizing: one instance per distinct host.
	if got := ClusterFor(hw.Cluster(2, 2), P32xlarge).Hosts; got != 2 {
		t.Errorf("cluster2x2 rents %d hosts, want 2", got)
	}
	if got := ClusterFor(hw.MultiSocket(4), P32xlarge).Hosts; got != 1 {
		t.Errorf("numa4 rents %d hosts, want 1", got)
	}
	if got := ClusterFor(nil, P32xlarge).Hosts; got != 1 {
		t.Errorf("nil topology rents %d hosts, want 1", got)
	}
}
