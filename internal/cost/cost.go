// Package cost reproduces Table I's training-cost arithmetic: AWS EC2 P3
// on-demand pricing multiplied by the simulated time to run one million
// training iterations. ScratchPipe's pitch is that a single-GPU p3.2xlarge
// matching (a fraction of) an 8-GPU p3.16xlarge's throughput wins on cost.
//
// Beyond the paper's two single-instance rows, Cluster generalizes the
// arithmetic to multi-host topologies: a shard placement that spans H
// hosts rents H instances, so the placement study can price the
// coordination-latency/throughput frontier in the same units as Table I.
package cost

import (
	"fmt"

	"repro/internal/hw"
)

// Instance is one AWS EC2 instance type.
type Instance struct {
	// Name is the instance type ("p3.2xlarge").
	Name string
	// PricePerHour is the on-demand USD price the paper quotes.
	PricePerHour float64
	// GPUs is the V100 count.
	GPUs int
}

// The instances of Table I.
var (
	P32xlarge  = Instance{Name: "p3.2xlarge", PricePerHour: 3.06, GPUs: 1}
	P316xlarge = Instance{Name: "p3.16xlarge", PricePerHour: 24.48, GPUs: 8}
)

// CostFor returns the USD cost of running iters iterations at iterTime
// seconds each on inst.
func CostFor(inst Instance, iterTime float64, iters int64) float64 {
	if iterTime < 0 || iters < 0 {
		return 0
	}
	hours := iterTime * float64(iters) / 3600
	return hours * inst.PricePerHour
}

// MillionIterCost is Table I's "1M Iter. Cost" column.
func MillionIterCost(inst Instance, iterTime float64) float64 {
	return CostFor(inst, iterTime, 1_000_000)
}

// FormatUSD renders a dollar amount Table I style.
func FormatUSD(v float64) string { return fmt.Sprintf("$ %.2f", v) }

// Cluster is a fleet of identically priced instances: the unit a
// multi-host shard placement rents. One host is Table I's original
// single-instance arithmetic.
type Cluster struct {
	// Instance is the per-host instance type.
	Instance Instance
	// Hosts is the number of instances rented.
	Hosts int
}

// Name renders the cluster ("p3.2xlarge" or "4x p3.2xlarge").
func (c Cluster) Name() string {
	if c.Hosts <= 1 {
		return c.Instance.Name
	}
	return fmt.Sprintf("%dx %s", c.Hosts, c.Instance.Name)
}

// PricePerHour is the fleet's aggregate on-demand price.
func (c Cluster) PricePerHour() float64 {
	h := c.Hosts
	if h < 1 {
		h = 1
	}
	return float64(h) * c.Instance.PricePerHour
}

// CostFor returns the USD cost of running iters iterations at iterTime
// seconds each on the whole fleet (every host is rented for the full
// duration, which is exactly why unpriced cross-host placements flatter
// scale-out).
func (c Cluster) CostFor(iterTime float64, iters int64) float64 {
	if iterTime < 0 || iters < 0 {
		return 0
	}
	return iterTime * float64(iters) / 3600 * c.PricePerHour()
}

// MillionIterCost is the fleet's "1M Iter. Cost" column.
func (c Cluster) MillionIterCost(iterTime float64) float64 {
	return c.CostFor(iterTime, 1_000_000)
}

// MillionQueryCost is the serving analogue of MillionIterCost: the USD
// cost of answering one million queries at a sustained throughput of
// qps queries/second on the whole fleet. Serving rents the fleet
// continuously, so cost per query is just price-per-hour divided by
// realized throughput.
func (c Cluster) MillionQueryCost(qps float64) float64 {
	if qps <= 0 {
		return 0
	}
	return c.PricePerHour() * 1_000_000 / qps / 3600
}

// ClusterFor sizes a fleet for a topology: one instance per distinct
// host the topology's nodes span. A nil topology is the single-host
// degenerate case.
func ClusterFor(topo *hw.Topology, inst Instance) Cluster {
	hosts := 1
	if topo != nil {
		hosts = topo.Hosts()
	}
	return Cluster{Instance: inst, Hosts: hosts}
}
