// Package cost reproduces Table I's training-cost arithmetic: AWS EC2 P3
// on-demand pricing multiplied by the simulated time to run one million
// training iterations. ScratchPipe's pitch is that a single-GPU p3.2xlarge
// matching (a fraction of) an 8-GPU p3.16xlarge's throughput wins on cost.
package cost

import "fmt"

// Instance is one AWS EC2 instance type.
type Instance struct {
	// Name is the instance type ("p3.2xlarge").
	Name string
	// PricePerHour is the on-demand USD price the paper quotes.
	PricePerHour float64
	// GPUs is the V100 count.
	GPUs int
}

// The instances of Table I.
var (
	P32xlarge  = Instance{Name: "p3.2xlarge", PricePerHour: 3.06, GPUs: 1}
	P316xlarge = Instance{Name: "p3.16xlarge", PricePerHour: 24.48, GPUs: 8}
)

// CostFor returns the USD cost of running iters iterations at iterTime
// seconds each on inst.
func CostFor(inst Instance, iterTime float64, iters int64) float64 {
	if iterTime < 0 || iters < 0 {
		return 0
	}
	hours := iterTime * float64(iters) / 3600
	return hours * inst.PricePerHour
}

// MillionIterCost is Table I's "1M Iter. Cost" column.
func MillionIterCost(inst Instance, iterTime float64) float64 {
	return CostFor(inst, iterTime, 1_000_000)
}

// FormatUSD renders a dollar amount Table I style.
func FormatUSD(v float64) string { return fmt.Sprintf("$ %.2f", v) }
