package dlrm

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func tinyConfig() Config {
	return Config{
		NumTables:    2,
		EmbeddingDim: 4,
		Lookups:      3,
		DenseDim:     5,
		RowsPerTable: 100,
		BatchSize:    6,
		BottomHidden: []int{8},
		TopHidden:    []int{8},
		LR:           0.05,
	}
}

func TestConfigValidation(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mods := []func(*Config){
		func(c *Config) { c.NumTables = 0 },
		func(c *Config) { c.EmbeddingDim = 0 },
		func(c *Config) { c.Lookups = 0 },
		func(c *Config) { c.DenseDim = 0 },
		func(c *Config) { c.RowsPerTable = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LR = 0 },
	}
	for i, mod := range mods {
		c := tinyConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 tables x 10M rows x 128 dims x 4 B = 40.96 GB (the paper's
	// "40 GB of total model size").
	gb := c.ModelBytes() / 1e9
	if gb < 40 || gb > 42 {
		t.Errorf("model size %.2f GB, want ~41", gb)
	}
	if c.NumInteractionPairs() != 36 {
		t.Errorf("pairs = %d, want C(9,2)=36", c.NumInteractionPairs())
	}
	if c.TopInputDim() != 128+36 {
		t.Errorf("top input = %d", c.TopInputDim())
	}
}

func newTinyModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(tinyConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randInputs(t *testing.T, m *Model) (*tensor.Matrix, []*tensor.Matrix, []float32) {
	t.Helper()
	cfg := m.Config()
	dense := tensor.New(cfg.BatchSize, cfg.DenseDim)
	for i := range dense.Data {
		dense.Data[i] = float32((i%7)-3) / 4
	}
	pooled := make([]*tensor.Matrix, cfg.NumTables)
	for tt := range pooled {
		p := tensor.New(cfg.BatchSize, cfg.EmbeddingDim)
		for i := range p.Data {
			p.Data[i] = float32((i%5)-2) / 8
		}
		pooled[tt] = p
	}
	labels := make([]float32, cfg.BatchSize)
	for i := range labels {
		if i%2 == 0 {
			labels[i] = 1
		}
	}
	return dense, pooled, labels
}

func TestPredictShapeAndRange(t *testing.T) {
	m := newTinyModel(t)
	dense, pooled, _ := randInputs(t, m)
	p := m.Predict(dense, pooled)
	if p.Rows != 6 || p.Cols != 1 {
		t.Fatalf("predict shape %dx%d", p.Rows, p.Cols)
	}
	for _, v := range p.Data {
		if v <= 0 || v >= 1 {
			t.Fatalf("CTR prediction %v outside (0,1)", v)
		}
	}
}

func TestTrainStepReturnsGrads(t *testing.T) {
	m := newTinyModel(t)
	dense, pooled, labels := randInputs(t, m)
	res := m.TrainStep(dense, pooled, labels)
	if len(res.PooledGrads) != 2 {
		t.Fatalf("pooled grads %d", len(res.PooledGrads))
	}
	var nonZero bool
	for _, g := range res.PooledGrads {
		if g.Rows != 6 || g.Cols != 4 {
			t.Fatalf("grad shape %dx%d", g.Rows, g.Cols)
		}
		for _, v := range g.Data {
			if v != 0 {
				nonZero = true
			}
		}
	}
	if !nonZero {
		t.Fatal("all pooled gradients zero")
	}
	if math.IsNaN(float64(res.Loss)) {
		t.Fatal("NaN loss")
	}
}

// TestEmbeddingGradientCheck validates the interaction backward path: the
// gradient w.r.t. a pooled embedding input matches finite differences.
func TestEmbeddingGradientCheck(t *testing.T) {
	m := newTinyModel(t)
	dense, pooled, labels := randInputs(t, m)

	// Use a probe model clone by reconstructing with same seed: New is
	// deterministic, so a fresh model has identical weights.
	loss := func() float64 {
		probe, err := New(tinyConfig(), 21)
		if err != nil {
			t.Fatal(err)
		}
		logits := probe.forward(dense, pooled)
		var sum float64
		for i, z := range logits.Data {
			zz := float64(z)
			y := float64(labels[i])
			sum += math.Max(zz, 0) - zz*y + math.Log1p(math.Exp(-math.Abs(zz)))
		}
		return sum / float64(len(logits.Data))
	}

	res := m.TrainStep(dense, pooled, labels)
	const eps = 1e-2
	for _, idx := range []int{0, 5, 13} {
		orig := pooled[0].Data[idx]
		pooled[0].Data[idx] = orig + eps
		up := loss()
		pooled[0].Data[idx] = orig - eps
		down := loss()
		pooled[0].Data[idx] = orig
		numeric := (up - down) / (2 * eps)
		analytic := float64(res.PooledGrads[0].Data[idx])
		if diff := math.Abs(numeric - analytic); diff > 5e-3 && diff > 0.2*math.Abs(numeric) {
			t.Errorf("pooled grad [%d]: analytic %v numeric %v", idx, analytic, numeric)
		}
	}
}

func TestTrainingLearns(t *testing.T) {
	m := newTinyModel(t)
	dense, pooled, labels := randInputs(t, m)
	var first, last float32
	for i := 0; i < 60; i++ {
		res := m.TrainStep(dense, pooled, labels)
		if i == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, err := New(tinyConfig(), 33)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(tinyConfig(), 33)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		wa, wb := pa[i].Weights(), pb[i].Weights()
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatal("same-seed models differ")
			}
		}
	}
	c, err := New(tinyConfig(), 34)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	pc := c.Params()
	for i := range pa {
		wa, wc := pa[i].Weights(), pc[i].Weights()
		for j := range wa {
			if wa[j] != wc[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different-seed models identical")
	}
}

func TestMLPFlopsPositive(t *testing.T) {
	m := newTinyModel(t)
	if m.MLPFlopsPerIteration(6) <= 0 {
		t.Fatal("non-positive flops")
	}
	big := m.MLPFlopsPerIteration(12)
	small := m.MLPFlopsPerIteration(6)
	if big <= small {
		t.Fatal("flops not monotone in batch")
	}
}

func TestForwardShapeMismatchPanics(t *testing.T) {
	m := newTinyModel(t)
	dense, pooled, _ := randInputs(t, m)
	defer func() {
		if recover() == nil {
			t.Error("wrong pooled count accepted")
		}
	}()
	m.Predict(dense, pooled[:1])
}
