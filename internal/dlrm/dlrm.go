// Package dlrm assembles the full recommendation model of Figure 1: a
// bottom MLP over continuous features, embedding layers over categorical
// features, a dot-product feature-interaction stage, and a top MLP that
// predicts the click-through rate.
//
// The model deliberately does *not* own the embedding tables. TrainStep
// takes the already-pooled embedding outputs and returns the gradients with
// respect to them, so that each training engine (hybrid CPU-GPU, static
// cache, straw-man, ScratchPipe, multi-GPU) can interpose its own cache and
// data-movement logic around identical dense math.
package dlrm

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config describes the DLRM architecture. The defaults mirror the paper's
// §V baseline (MLPerf-DLRM-derived): 8 tables x 10M rows x 128-dim
// embeddings, 20 lookups/table, batch 2048.
type Config struct {
	// NumTables is the number of embedding tables.
	NumTables int
	// EmbeddingDim is the embedding vector dimension; the bottom MLP's
	// output width must equal it for the dot interaction.
	EmbeddingDim int
	// Lookups is the number of gathers per table per sample.
	Lookups int
	// DenseDim is the number of continuous input features.
	DenseDim int
	// RowsPerTable is the embedding table height (used for sizing and
	// memory accounting; the model itself never touches tables).
	RowsPerTable int64
	// BatchSize is the training mini-batch size.
	BatchSize int
	// BottomHidden lists the bottom MLP hidden widths (the final
	// EmbeddingDim-wide layer is appended automatically).
	BottomHidden []int
	// TopHidden lists the top MLP hidden widths (the final 1-wide logit
	// layer is appended automatically).
	TopHidden []int
	// LR is the SGD learning rate.
	LR float32
}

// DefaultConfig returns the paper's default model configuration: a 40 GB
// model (8 x 10M x 128 x 4B) with MLPerf-DLRM MLP shapes.
func DefaultConfig() Config {
	return Config{
		NumTables:    8,
		EmbeddingDim: 128,
		Lookups:      20,
		DenseDim:     13,
		RowsPerTable: 10_000_000,
		BatchSize:    2048,
		BottomHidden: []int{512, 256},
		TopHidden:    []int{1024, 1024, 512, 256},
		LR:           0.01,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.NumTables <= 0:
		return fmt.Errorf("dlrm: NumTables %d <= 0", c.NumTables)
	case c.EmbeddingDim <= 0:
		return fmt.Errorf("dlrm: EmbeddingDim %d <= 0", c.EmbeddingDim)
	case c.Lookups <= 0:
		return fmt.Errorf("dlrm: Lookups %d <= 0", c.Lookups)
	case c.DenseDim <= 0:
		return fmt.Errorf("dlrm: DenseDim %d <= 0", c.DenseDim)
	case c.RowsPerTable <= 0:
		return fmt.Errorf("dlrm: RowsPerTable %d <= 0", c.RowsPerTable)
	case c.BatchSize <= 0:
		return fmt.Errorf("dlrm: BatchSize %d <= 0", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("dlrm: LR %g <= 0", c.LR)
	}
	return nil
}

// ModelBytes returns the total embedding model size in bytes (the paper's
// "40 GB" headline for the default config).
func (c Config) ModelBytes() float64 {
	return float64(c.NumTables) * float64(c.RowsPerTable) * float64(c.EmbeddingDim) * 4
}

// NumInteractionPairs returns the number of pairwise dot products among the
// (NumTables + 1) feature vectors entering the interaction stage.
func (c Config) NumInteractionPairs() int {
	n := c.NumTables + 1
	return n * (n - 1) / 2
}

// TopInputDim returns the width of the top MLP input: the bottom MLP output
// concatenated with all pairwise dots.
func (c Config) TopInputDim() int {
	return c.EmbeddingDim + c.NumInteractionPairs()
}

// Model is the dense part of the DLRM (both MLPs and the interaction).
type Model struct {
	cfg    Config
	Bottom *nn.MLP
	Top    *nn.MLP
	opt    nn.SGD

	// lastVectors retains the (NumTables+1) interaction inputs between
	// forward and backward.
	lastVectors []*tensor.Matrix
}

// New constructs a deterministic model from cfg and seed.
func New(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	bottomSizes := append(append([]int{cfg.DenseDim}, cfg.BottomHidden...), cfg.EmbeddingDim)
	bottom, err := nn.NewMLP(bottomSizes, rng)
	if err != nil {
		return nil, err
	}
	topSizes := append(append([]int{cfg.TopInputDim()}, cfg.TopHidden...), 1)
	top, err := nn.NewMLP(topSizes, rng)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, Bottom: bottom, Top: top, opt: nn.SGD{LR: cfg.LR}}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// interactionPairs iterates deterministic (i, j) with i < j over the
// (NumTables+1) interaction vectors; index 0 is the bottom MLP output.
func (m *Model) interactionPairs(f func(i, j int)) {
	n := m.cfg.NumTables + 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f(i, j)
		}
	}
}

// forward runs bottom MLP + interaction + top MLP and returns the logits.
func (m *Model) forward(dense *tensor.Matrix, pooled []*tensor.Matrix) *tensor.Matrix {
	if len(pooled) != m.cfg.NumTables {
		panic(fmt.Sprintf("dlrm: %d pooled tables for %d-table model", len(pooled), m.cfg.NumTables))
	}
	batch := dense.Rows
	bottomOut := m.Bottom.Forward(dense)
	vectors := make([]*tensor.Matrix, 0, m.cfg.NumTables+1)
	vectors = append(vectors, bottomOut)
	vectors = append(vectors, pooled...)
	for t, v := range vectors {
		if v.Rows != batch || v.Cols != m.cfg.EmbeddingDim {
			panic(fmt.Sprintf("dlrm: interaction vector %d is %dx%d, want %dx%d", t, v.Rows, v.Cols, batch, m.cfg.EmbeddingDim))
		}
	}
	m.lastVectors = vectors

	features := tensor.New(batch, m.cfg.TopInputDim())
	dim := m.cfg.EmbeddingDim
	for s := 0; s < batch; s++ {
		copy(features.Row(s)[:dim], bottomOut.Row(s))
	}
	col := dim
	m.interactionPairs(func(i, j int) {
		for s := 0; s < batch; s++ {
			features.Row(s)[col] = tensor.Dot(vectors[i].Row(s), vectors[j].Row(s))
		}
		col++
	})
	return m.Top.Forward(features)
}

// Predict returns sigmoid CTR probabilities for a batch (inference path,
// used by the examples).
func (m *Model) Predict(dense *tensor.Matrix, pooled []*tensor.Matrix) *tensor.Matrix {
	return nn.Sigmoid(m.forward(dense, pooled))
}

// StepResult carries the outputs of one training step.
type StepResult struct {
	// Loss is the mean BCE loss of the batch.
	Loss float32
	// PooledGrads[t] is dL/d(pooled embedding output of table t),
	// batch x dim — what the engine must duplicate, coalesce, and
	// scatter into its embedding store.
	PooledGrads []*tensor.Matrix
}

// TrainStep runs forward + backward + SGD on the dense parameters and
// returns the gradients the embedding layers must apply. The embedding
// update itself is the engine's job (that is the entire subject of the
// paper).
func (m *Model) TrainStep(dense *tensor.Matrix, pooled []*tensor.Matrix, labels []float32) StepResult {
	logits := m.forward(dense, pooled)
	loss, dlogits := nn.BCEWithLogits(logits, labels)

	dfeatures := m.Top.Backward(dlogits)
	batch := dense.Rows
	dim := m.cfg.EmbeddingDim
	vectors := m.lastVectors
	dvecs := make([]*tensor.Matrix, len(vectors))
	for t := range dvecs {
		dvecs[t] = tensor.New(batch, dim)
	}
	// Direct (concatenated) path into the bottom vector.
	for s := 0; s < batch; s++ {
		copy(dvecs[0].Row(s), dfeatures.Row(s)[:dim])
	}
	// Dot-product path: d(v_i . v_j) flows into both operands.
	col := dim
	m.interactionPairs(func(i, j int) {
		for s := 0; s < batch; s++ {
			g := dfeatures.Row(s)[col]
			if g == 0 {
				continue
			}
			tensor.AXPY(g, vectors[j].Row(s), dvecs[i].Row(s))
			tensor.AXPY(g, vectors[i].Row(s), dvecs[j].Row(s))
		}
		col++
	})
	m.Bottom.Backward(dvecs[0])

	m.opt.Step(m.Top.Params())
	m.opt.Step(m.Bottom.Params())
	return StepResult{Loss: loss, PooledGrads: dvecs[1:]}
}

// MLPFlopsPerIteration estimates the dense FLOPs of one training iteration
// (forward + backward ~= 3x forward) for the timing model.
func (m *Model) MLPFlopsPerIteration(batch int) float64 {
	fwd := m.Bottom.FlopsForward(batch) + m.Top.FlopsForward(batch)
	interaction := 2 * float64(batch) * float64(m.cfg.NumInteractionPairs()) * float64(m.cfg.EmbeddingDim)
	return 3 * (fwd + interaction)
}

// Params returns all dense trainable parameters (for checkpoint comparison
// in the equivalence tests).
func (m *Model) Params() []nn.Param {
	return append(m.Bottom.Params(), m.Top.Params()...)
}
