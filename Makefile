# Developer entry points. `make check` is the CI gate (run on every
# push/PR by .github/workflows/ci.yml): everything it runs must stay
# green, including the race detector over every package that spawns or
# drives goroutines.

GO ?= go

.PHONY: check vet build test race examples bench hotpath benchgate fmtcheck doccheck fuzzsmoke

check: vet build test race examples doccheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Build-only gate for every example program (vet+build already cover
# them via ./..., but an explicit target keeps them from silently
# dropping out of the gate if the build patterns ever narrow).
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# Every package that spawns goroutines or drives goroutine-spawning code
# runs under the race detector: the worker pool itself (par), the
# scratchpad control plane and pipeline (core), the sharded planner with
# its shard-parallel Plan pass (shard), the engines' per-table fan-outs
# (engine), the trace loader (trace), the harness that drives them all
# (bench), and the public facade (scratchpipe). The failure-path tests
# ride along too: hw (fault plans mutating live topologies) and
# checkpoint (restore staging), plus the shard evacuation and engine
# fault-orchestration tests already inside the shard/engine runs. The
# serving fleet (serve) drives the sharded planner per replica and
# inherits its fan-out machinery. The message plane (msgplane) runs
# every host as a goroutine and the overlapped-coordination path races
# a speculation goroutine against the pipeline, so both ride along. Any
# hold-discipline, shard-partition, or fan-out bug must surface as a
# race here.
race:
	$(GO) test -race ./internal/par/ ./internal/core/ ./internal/shard/ \
		./internal/engine/ ./internal/trace/ ./internal/bench/ \
		./internal/hw/ ./internal/checkpoint/ ./internal/serve/ \
		./internal/msgplane/ ./scratchpipe/

# Short fuzzing pass over every flag-grammar parser (the checked-in
# corpora under */testdata/fuzz/ run as plain tests in `make test`;
# this target actually mutates). Each target asserts no-panic and the
# canonical parse/print fixpoint the benchmark baselines match on.
# FUZZTIME scales the budget (CI smoke keeps it short).
FUZZTIME ?= 10s
fuzzsmoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseFaultPlan -fuzztime=$(FUZZTIME) ./internal/hw/
	$(GO) test -run='^$$' -fuzz=FuzzParseArrival -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -run='^$$' -fuzz=FuzzParseBatch -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -run='^$$' -fuzz=FuzzParseReshardSpec -fuzztime=$(FUZZTIME) ./internal/engine/

# Fails on dangling intra-repo documentation references: any *.md that
# names a file, directory, or package path that no longer exists (see
# cmd/doccheck). Keeps DESIGN.md/EXPERIMENTS.md/README.md honest as the
# tree moves.
doccheck:
	$(GO) run ./cmd/doccheck

# Fails if any file is not gofmt-clean (CI runs this before make check).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run='^$$' -bench=Figure13 -benchmem .

hotpath:
	$(GO) run ./cmd/spbench -quick -json BENCH_hotpath.json

# Benchmark-regression smoke gate: re-runs the quick hot-path sweep and
# fails if wall time or allocations regress beyond the thresholds against
# the last committed BENCH_hotpath.json baseline entry (>25% by default;
# override flags via BENCHGATE_FLAGS — CI loosens the wall factor because
# its runners are not the machine that recorded the baseline, while the
# allocation gate is machine-independent and stays tight).
benchgate:
	$(GO) run ./cmd/benchgate -baseline BENCH_hotpath.json $(BENCHGATE_FLAGS)
