# Developer entry points. `make check` is the CI gate: everything it runs
# must stay green on every PR, including the race detector over the
# packages with parallel per-table fan-out.

GO ?= go

.PHONY: check vet build test race bench hotpath

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scratchpad control plane and the engines run per-table work across
# goroutines; any hold-discipline or fan-out bug must surface as a race.
race:
	$(GO) test -race ./internal/core/ ./internal/engine/

bench:
	$(GO) test -run='^$$' -bench=Figure13 -benchmem .

hotpath:
	$(GO) run ./cmd/spbench -quick -json BENCH_hotpath.json
